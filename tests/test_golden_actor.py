"""Golden end-to-end ACTOR regression tests.

A pinned-seed train → predict → adapt pipeline whose
:class:`~repro.openmp.runtime.WorkloadRunReport` is compared against
checked-in values.  Any change to the machine model, the training pipeline,
the sampling flow, the selector or the runtime that shifts these numbers is
a behavioural change and must be deliberate: regenerate the constants with
the recipe in each test's docstring and explain the shift in the commit.

Tolerances: aggregates are compared at ``rel=1e-6`` (slack for BLAS/LAPACK
rounding differences across platforms — the pipeline solves least-squares
systems); decisions and instance counts are exact.

Re-pinned in PR 8 under the default safeguarded Newton fixed-point solver
at its 1e-9 tolerance (every decision survived the re-pin unchanged; only
the floating aggregates moved, by ~1e-6 relative).
"""

from __future__ import annotations

import pytest

from repro.core import (
    ACTOR,
    EnergyAwarePolicy,
    PredictionPolicy,
    train_predictor_bundle,
)
from repro.machine import (
    Machine,
    default_pstate_table,
    dvfs_power_parameters,
    quad_core_xeon,
)
from repro.machine.power import PowerModel
from repro.openmp import OpenMPRuntime
from repro.workloads import nas_suite

#: rel tolerance for floating aggregates (time, energy, power, ED²).
_REL = 1e-6


@pytest.fixture(scope="module")
def golden_suite():
    return nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)


@pytest.fixture(scope="module")
def golden_training(golden_suite):
    return [golden_suite.get(n) for n in ("BT", "CG", "IS", "MG")]


class TestGoldenPredictionRun:
    """Pinned regression: linear train → sample → predict → adapt on SP."""

    GOLDEN = {
        "time_seconds": 17.54139227374213,
        "energy_joules": 2451.849760030772,
        "average_power_watts": 139.77509434647146,
        "ed2": 754435.2570889147,
    }
    GOLDEN_DECISIONS = {
        "sp.compute_rhs": "2b",
        "sp.txinvr": "4",
        "sp.x_solve": "4",
        "sp.ninvr": "4",
        "sp.y_solve": "4",
        "sp.pinvr": "4",
        "sp.z_solve": "2b",
        "sp.tzetar": "4",
        "sp.add": "2b",
        "sp.error_norm": "4",
        "sp.adi_sync": "4",
    }

    def test_report_matches_golden(self, golden_suite, golden_training):
        bundle = train_predictor_bundle(
            Machine(seed=20070917), golden_training, linear=True
        )
        runtime = OpenMPRuntime(Machine(seed=77), seed=1234, keep_executions=False)
        actor = ACTOR(runtime)
        policy = PredictionPolicy(bundle)
        report = actor.run_with_policy(
            golden_suite.get("SP"), policy, max_timesteps=20
        )

        for attribute, expected in self.GOLDEN.items():
            assert getattr(report, attribute) == pytest.approx(
                expected, rel=_REL
            ), attribute
        assert policy.decisions() == self.GOLDEN_DECISIONS
        assert report.phase_configurations() == {
            # Sampling instances run on the sample configuration "4", but
            # the locked decision dominates every phase's instance count.
            phase: decision if decision != "4" else "4"
            for phase, decision in self.GOLDEN_DECISIONS.items()
        }
        assert {name: s.instances for name, s in report.phases.items()} == {
            phase: 20 for phase in self.GOLDEN_DECISIONS
        }


class TestGoldenEnergyAwareRun:
    """Pinned regression: DVFS train → adapt on MG under the ED² objective."""

    GOLDEN = {
        "time_seconds": 8.977765783589382,
        "energy_joules": 767.9227448355005,
        "average_power_watts": 85.53606357599573,
        "ed2": 61894.78707333947,
    }
    GOLDEN_DECISIONS = {
        "mg.resid": "2b@2GHz",
        "mg.psinv": "2b@1.6GHz",
        "mg.rprj3": "2b",
        "mg.interp": "4",
        "mg.norm2u3": "4",
    }

    def test_report_matches_golden(self, golden_suite, golden_training):
        table = default_pstate_table()
        bundle = train_predictor_bundle(
            Machine(seed=20070917),
            golden_training,
            linear=True,
            pstate_table=table,
        )
        topology = quad_core_xeon()
        machine = Machine(
            topology=topology,
            power_model=PowerModel(
                topology, dvfs_power_parameters(), pstate_table=table
            ),
            seed=77,
        )
        runtime = OpenMPRuntime(machine, seed=1234, keep_executions=False)
        actor = ACTOR(runtime)
        policy = EnergyAwarePolicy(
            bundle,
            objective="ed2",
            pstate_table=table,
            power_parameters=dvfs_power_parameters(),
        )
        report = actor.run_with_policy(
            golden_suite.get("MG"), policy, max_timesteps=30
        )

        for attribute, expected in self.GOLDEN.items():
            assert getattr(report, attribute) == pytest.approx(
                expected, rel=_REL
            ), attribute
        # The memory-bound MG phases throttle both placement and frequency;
        # the compute-bound ones stay at all cores, nominal clock.
        assert policy.decisions() == self.GOLDEN_DECISIONS
