"""Golden pinned-seed regressions guarding the heterogeneous-P-state refactor.

The literal values below were captured from the *pre-refactor* machine model
— the one whose grid kernel, execution memo and power model assume a single
P-state per configuration — immediately before ``Configuration`` grew its
per-core ``pstate_vector`` axis.  The homogeneous paths (every configuration
of the placement × P-state cross-product pins one frequency for all cores)
are exactly the cells pinned here: the refactor must reproduce them
bit-for-bit, because opening the per-core axis must not perturb a single
homogeneous execution, oracle cell or training sample.

Complements ``tests/test_golden_grid.py`` (which pins the grid rewiring of
PR 4) with a capture taken on different benchmarks (MG / LU / FT+IS), a
different seed and the full DVFS cross-product, so the two golden nets do
not share cells.
"""

from __future__ import annotations

import pytest

from repro.core import build_oracle_table, collect_training_dataset
from repro.machine import (
    Machine,
    dvfs_configurations,
    standard_configurations,
)
from repro.workloads import nas_suite

#: The captures are exact; 1e-12 absorbs only last-ulp libm freedom.
_RTOL = 1e-12


@pytest.fixture(scope="module")
def golden_machine():
    return Machine(noise_sigma=0.0)


@pytest.fixture(scope="module")
def golden_suite():
    return nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)


@pytest.fixture(scope="module")
def cross_product(golden_machine):
    return dvfs_configurations(
        standard_configurations(golden_machine.topology),
        golden_machine.pstate_table,
    )


class TestGoldenHomogeneousGrid:
    """MG phases × the full DVFS cross-product, straight off ``execute_grid``."""

    #: (work row, config column) -> (time_seconds, ipc, power_watts, ed2);
    #: columns 0/4/7/11/14 = "1", "2a@2GHz", "2b@2GHz", "3@1.6GHz",
    #: "4@1.6GHz" in cross-product order.
    GOLDEN_CELLS = {
        (0, 0): (0.25649999999999995, 0.3331457323085558, 125.24958919913672, 2.113676011099139),
        (0, 4): (0.27603245531517745, 0.37149202722371016, 127.24397765748606, 2.6761945517846226),
        (0, 7): (0.18485500705332053, 0.5547258796998406, 128.90791873070617, 0.8142790329789275),
        (0, 11): (0.2573679547878221, 0.4980449901441342, 127.52158853291928, 2.1739378709254678),
        (0, 14): (0.26950873257971336, 0.47561286522619123, 128.45022672264105, 2.51451019177996),
        (1, 0): (0.2025, 0.31023170370529396, 126.86913057200897, 1.053491525317485),
        (1, 4): (0.17301720912729104, 0.4357202637855703, 128.6947764220165, 0.6665440049676689),
        (1, 7): (0.15779148446853686, 0.4777640837482482, 130.13816519708487, 0.5112759509901165),
        (1, 11): (0.16847425320399984, 0.5593399478457862, 128.65806058659822, 0.6152301641151214),
        (1, 14): (0.1760099040253766, 0.5353953263158222, 129.51566201849118, 0.7062095857236472),
        (2, 0): (0.10800000000000001, 0.6827142753370287, 123.60394527332383, 0.15570537310814936),
        (2, 4): (0.10560613089237782, 0.8378355435997236, 124.91526793606411, 0.14712379493893607),
        (2, 7): (0.06327369152898932, 1.3983785036967677, 127.22155931477782, 0.03222776832791481),
        (2, 11): (0.08242035428814666, 1.3419162482355995, 126.12113378446814, 0.07061407871283021),
        (2, 14): (0.08036114859486757, 1.376308260129354, 127.44345549386145, 0.06613874422979653),
        (3, 0): (0.06750000000000002, 1.4401404885849423, 127.07891442017952, 0.03908272300831868),
        (3, 4): (0.0406641488580924, 2.868673828203487, 129.63078911240348, 0.00871652187249507),
        (3, 7): (0.040684235862661795, 2.867257479510353, 130.98861992348444, 0.008820882901162043),
        (3, 11): (0.033384093901337585, 4.367820342830486, 128.54554672311778, 0.004782729463128764),
        (3, 14): (0.025205585096624718, 5.785075962737787, 133.44263704853032, 0.0021369037698645245),
        (4, 0): (0.04049999999999999, 1.1525031330797675, 125.97930473318618, 0.008368820960838642),
        (4, 4): (0.029737778148300534, 1.8836260055587857, 128.06179257578177, 0.0033677909705539786),
        (4, 7): (0.029768611477183234, 1.8816750089472738, 129.41421015463004, 0.003413954273886706),
        (4, 11): (0.027897004174699997, 2.509967195620884, 126.94816367355152, 0.0027561263638580195),
        (4, 14): (0.02358399934130083, 2.969070865430816, 131.31417668206555, 0.001722518826209641),
    }

    def test_mg_grid_cells_match_pre_hetero_capture(
        self, golden_machine, golden_suite, cross_product
    ):
        works = [p.work for p in golden_suite.get("MG").phases]
        grid = golden_machine.execute_grid(works, cross_product, use_memo=False)
        assert grid.shape == (5, 15)
        for (wi, ci), (time_s, ipc, watts, ed2) in self.GOLDEN_CELLS.items():
            assert float(grid.time_seconds[wi, ci]) == pytest.approx(time_s, rel=_RTOL)
            assert float(grid.ipc[wi, ci]) == pytest.approx(ipc, rel=_RTOL)
            assert float(grid.power_watts[wi, ci]) == pytest.approx(watts, rel=_RTOL)
            assert float(grid.ed2[wi, ci]) == pytest.approx(ed2, rel=_RTOL)


class TestGoldenHomogeneousOracle:
    """LU oracle over the DVFS cross-product."""

    GOLDEN_LU = {
        ("lu.jacld_blts", "1"): (0.8399999999999999, 1.0648630215581945, 125.17647045286823),
        ("lu.jacld_blts", "2b@2GHz"): (0.6563823539529943, 1.6353241662671658, 128.67447718718236),
        ("lu.jacld_blts", "4@1.6GHz"): (0.47801820132867284, 2.8069379020167493, 130.9091105463724),
        ("lu.rhs", "1"): (0.96, 0.3719464174701038, 126.00665380545819),
        ("lu.rhs", "2b@2GHz"): (0.7081751479753218, 0.605052400032105, 129.4312455321055),
        ("lu.rhs", "4@1.6GHz"): (0.7736406401719927, 0.6923173542665441, 129.0987271167455),
        ("lu.l2norm", "1"): (0.11999999999999998, 1.1525031330797675, 125.97930473318618),
        ("lu.l2norm", "2b@2GHz"): (0.0862067857420038, 1.9251901081218619, 129.41421015463004),
        ("lu.l2norm", "4@1.6GHz"): (0.06601641124242169, 3.1425604641326723, 131.31417668206555),
        ("lu.add", "1"): (0.24, 1.5016679025393502, 127.39926490611947),
        ("lu.add", "2b@2GHz"): (0.1453513723370347, 2.97541845651456, 131.32012931120764),
        ("lu.add", "4@1.6GHz"): (0.09036005855327116, 5.98275890442742, 133.6903014392972),
    }

    def test_lu_oracle_cells_match_pre_hetero_capture(
        self, golden_machine, golden_suite, cross_product
    ):
        table = build_oracle_table(
            golden_machine, golden_suite.get("LU"), cross_product
        )
        for (phase, config), (time_s, ipc, watts) in self.GOLDEN_LU.items():
            m = table.measurement(phase, config)
            assert m.time_seconds == pytest.approx(time_s, rel=_RTOL)
            assert m.ipc == pytest.approx(ipc, rel=_RTOL)
            assert m.power_watts == pytest.approx(watts, rel=_RTOL)

    def test_lu_application_metrics_and_optima_match(
        self, golden_machine, golden_suite, cross_product
    ):
        table = build_oracle_table(
            golden_machine, golden_suite.get("LU"), cross_product
        )
        app = table.application_metrics("4")
        assert app["time_seconds"] == pytest.approx(236.6367590721739, rel=_RTOL)
        assert app["energy_joules"] == pytest.approx(34726.11596278148, rel=_RTOL)
        assert app["ed2"] == pytest.approx(1944556778.7352092, rel=_RTOL)
        throttled = table.application_metrics("2b@1.6GHz")
        assert throttled["time_seconds"] == pytest.approx(387.0666839759164, rel=_RTOL)
        assert throttled["energy_joules"] == pytest.approx(47818.39477155123, rel=_RTOL)
        assert table.global_optimal_configuration("ed2") == "4"
        assert table.phase_optimal_configurations("time_seconds") == {
            "lu.jacld_blts": "4",
            "lu.jacu_buts": "4",
            "lu.rhs": "2b",
            "lu.l2norm": "4",
            "lu.add": "4",
        }


class TestGoldenHomogeneousTraining:
    """FT+IS DVFS training collection at seed 11."""

    GOLDEN_FIRST_FEATURES = (
        5.920484176987755,
        0.04337500293423923,
        1.964200187587362,
        0.003997377289161312,
        0.041021282721683455,
        0.003755557280911525,
        0.0038500908515025074,
        0.6298723182404655,
        0.0009628605577658957,
        0.4955282599025094,
        0.007518235701334116,
        3.4665937601283745,
        1.71241391939206,
    )
    GOLDEN_FIRST_TARGETS = {
        "1": 1.4973216471870736,
        "1@2GHz": 1.52072766058195,
        "1@1.6GHz": 1.5448770563665386,
        "2a": 2.9229105857770765,
        "2a@1.6GHz": 3.0169542131980376,
        "2b@2GHz": 2.968160135015798,
        "3": 4.355069233857484,
        "4": 5.763626291333839,
        "4@2GHz": 5.865519944653501,
        "4@1.6GHz": 5.968945879666398,
    }

    def test_dvfs_dataset_matches_pre_hetero_capture(
        self, golden_machine, golden_suite
    ):
        dataset = collect_training_dataset(
            golden_machine,
            [golden_suite.get("FT"), golden_suite.get("IS")],
            samples_per_phase=2,
            measurement_noise=0.10,
            seed=11,
            pstate_table=golden_machine.pstate_table,
        )
        assert len(dataset) == 18
        assert dataset.target_configurations == (
            "1", "1@2GHz", "1@1.6GHz",
            "2a", "2a@2GHz", "2a@1.6GHz",
            "2b", "2b@2GHz", "2b@1.6GHz",
            "3", "3@2GHz", "3@1.6GHz",
            "4", "4@2GHz", "4@1.6GHz",
        )
        first = dataset.samples[0]
        assert first.phase_id == "FT:ft.fft_x"
        assert first.features == pytest.approx(self.GOLDEN_FIRST_FEATURES, rel=_RTOL)
        for config, ipc in self.GOLDEN_FIRST_TARGETS.items():
            assert first.targets[config] == pytest.approx(ipc, rel=_RTOL)
        last = dataset.samples[-1]
        assert last.phase_id == "IS:is.verify"
        assert last.targets["2a@1.6GHz"] == pytest.approx(
            1.7479450839041755, rel=_RTOL
        )
        assert last.targets["4"] == pytest.approx(2.3220525658388715, rel=_RTOL)
