"""Golden pinned-seed regressions guarding the heterogeneous-P-state refactor.

The literal values below were captured from the *pre-refactor* machine model
— the one whose grid kernel, execution memo and power model assume a single
P-state per configuration — immediately before ``Configuration`` grew its
per-core ``pstate_vector`` axis.  The homogeneous paths (every configuration
of the placement × P-state cross-product pins one frequency for all cores)
are exactly the cells pinned here: the refactor must reproduce them
bit-for-bit, because opening the per-core axis must not perturb a single
homogeneous execution, oracle cell or training sample.

Complements ``tests/test_golden_grid.py`` (which pins the grid rewiring of
PR 4) with a capture taken on different benchmarks (MG / LU / FT+IS), a
different seed and the full DVFS cross-product, so the two golden nets do
not share cells.

Re-pinned in PR 8 under the default safeguarded Newton fixed-point solver
at its 1e-9 tolerance, after ``tests/test_fixed_point.py`` proved the
newton and bisect solvers agree to ≤ 1e-9 on these same grids.
"""

from __future__ import annotations

import pytest

from repro.core import build_oracle_table, collect_training_dataset
from repro.machine import (
    Machine,
    dvfs_configurations,
    standard_configurations,
)
from repro.workloads import nas_suite

#: The captures are exact; 1e-12 absorbs only last-ulp libm freedom.
_RTOL = 1e-12


@pytest.fixture(scope="module")
def golden_machine():
    return Machine(noise_sigma=0.0)


@pytest.fixture(scope="module")
def golden_suite():
    return nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)


@pytest.fixture(scope="module")
def cross_product(golden_machine):
    return dvfs_configurations(
        standard_configurations(golden_machine.topology),
        golden_machine.pstate_table,
    )


class TestGoldenHomogeneousGrid:
    """MG phases × the full DVFS cross-product, straight off ``execute_grid``."""

    #: (work row, config column) -> (time_seconds, ipc, power_watts, ed2);
    #: columns 0/4/7/11/14 = "1", "2a@2GHz", "2b@2GHz", "3@1.6GHz",
    #: "4@1.6GHz" in cross-product order.
    GOLDEN_CELLS = {
        (0, 0): (0.25649999999999995, 0.3331457323085558, 125.24958919913672, 2.113676011099139),
        (0, 4): (0.2760323295267374, 0.37149219651330995, 127.24398304812422, 2.676191006523338),
        (0, 7): (0.1848551355260282, 0.5547254941701901, 128.9079102555052, 0.8142806771959418),
        (0, 11): (0.2573680987295447, 0.49804471159580527, 127.52158144874805, 2.173941397703711),
        (0, 14): (0.26950875517335293, 0.475612825354293, 128.45022555710653, 2.5145108013581803),
        (1, 0): (0.20249999999999993, 0.31023181525610577, 126.86913412290441, 1.053491554803287),
        (1, 4): (0.17301724016838704, 0.43572034228417933, 128.6947788071999, 0.6665443760761175),
        (1, 7): (0.15779154482099886, 0.47776407280094757, 130.1381648916084, 0.5112765364523316),
        (1, 11): (0.1684743137681852, 0.5593399478908422, 128.65806058766995, 0.6152308276209248),
        (1, 14): (0.1760100043720276, 0.5353952135860431, 129.51565887982434, 0.7062107764813459),
        (2, 0): (0.10800000000000001, 0.6827142753370287, 123.60394527332383, 0.15570537310814936),
        (2, 4): (0.1056061439457676, 0.8378354400395185, 124.9152667695572, 0.14712384812051948),
        (2, 7): (0.06327369393915991, 1.3983784504308598, 127.22155891758533, 0.03222777191008085),
        (2, 11): (0.08242034133233477, 1.341916459173994, 126.12113539665317, 0.07061404631559969),
        (2, 14): (0.08036117898544114, 1.3763077396442398, 127.44345063296447, 0.0661388167432341),
        (3, 0): (0.06750000000000002, 1.4401404885849423, 127.07891442017952, 0.03908272300831868),
        (3, 4): (0.040664149417650404, 2.868673788729173, 129.63078891684717, 0.008716522219176088),
        (3, 7): (0.04068423588368441, 2.8672574780287654, 130.98861991614294, 0.008820882914341606),
        (3, 11): (0.03338409424989784, 4.3678202972264755, 128.54554657555627, 0.004782729607446635),
        (3, 14): (0.025205584105756143, 5.78507619015763, 133.44263779704124, 0.002136903529836447),
        (4, 0): (0.04049999999999999, 1.1525031330797675, 125.97930473318618, 0.008368820960838642),
        (4, 4): (0.029737778681319146, 1.8836259717967576, 128.06179225954773, 0.0033677911433300112),
        (4, 7): (0.02976861149810687, 1.8816750076246902, 129.4142101422434, 0.003413954280758703),
        (4, 11): (0.02789700424703166, 2.5099671891130133, 126.9481636222459, 0.002756126384182486),
        (4, 14): (0.02358399898361369, 2.9690709104612822, 131.31417713903224, 0.001722518753830084),
    }

    def test_mg_grid_cells_match_pre_hetero_capture(
        self, golden_machine, golden_suite, cross_product
    ):
        works = [p.work for p in golden_suite.get("MG").phases]
        grid = golden_machine.execute_grid(works, cross_product, use_memo=False)
        assert grid.shape == (5, 15)
        for (wi, ci), (time_s, ipc, watts, ed2) in self.GOLDEN_CELLS.items():
            assert float(grid.time_seconds[wi, ci]) == pytest.approx(time_s, rel=_RTOL)
            assert float(grid.ipc[wi, ci]) == pytest.approx(ipc, rel=_RTOL)
            assert float(grid.power_watts[wi, ci]) == pytest.approx(watts, rel=_RTOL)
            assert float(grid.ed2[wi, ci]) == pytest.approx(ed2, rel=_RTOL)


class TestGoldenHomogeneousOracle:
    """LU oracle over the DVFS cross-product."""

    GOLDEN_LU = {
        ("lu.jacld_blts", "1"): (0.8399999999999999, 1.0648630215581945, 125.17647045286823),
        ("lu.jacld_blts", "2b@2GHz"): (0.6563823435265355, 1.6353241922438546, 128.67447742291773),
        ("lu.jacld_blts", "4@1.6GHz"): (0.4780182009633094, 2.806937904162175, 130.9091105650943),
        ("lu.rhs", "1"): (0.96, 0.3719464174701038, 126.00665380545819),
        ("lu.rhs", "2b@2GHz"): (0.7081754363298686, 0.6050521536671485, 129.43124039004078),
        ("lu.rhs", "4@1.6GHz"): (0.7736399727547374, 0.6923179515269814, 129.09873962689227),
        ("lu.l2norm", "1"): (0.11999999999999998, 1.1525031330797675, 125.97930473318618),
        ("lu.l2norm", "2b@2GHz"): (0.08620678580626791, 1.925190106686701, 129.4142101422434),
        ("lu.l2norm", "4@1.6GHz"): (0.06601641014383429, 3.1425605164284174, 131.31417713903224),
        ("lu.add", "1"): (0.24, 1.5016679025393502, 127.39926490611947),
        ("lu.add", "2b@2GHz"): (0.14535137391359973, 2.975418424241451, 131.3201291534879),
        ("lu.add", "4@1.6GHz"): (0.09036005804480682, 5.982758938092954, 133.69030154784355),
    }

    def test_lu_oracle_cells_match_pre_hetero_capture(
        self, golden_machine, golden_suite, cross_product
    ):
        table = build_oracle_table(
            golden_machine, golden_suite.get("LU"), cross_product
        )
        for (phase, config), (time_s, ipc, watts) in self.GOLDEN_LU.items():
            m = table.measurement(phase, config)
            assert m.time_seconds == pytest.approx(time_s, rel=_RTOL)
            assert m.ipc == pytest.approx(ipc, rel=_RTOL)
            assert m.power_watts == pytest.approx(watts, rel=_RTOL)

    def test_lu_application_metrics_and_optima_match(
        self, golden_machine, golden_suite, cross_product
    ):
        table = build_oracle_table(
            golden_machine, golden_suite.get("LU"), cross_product
        )
        app = table.application_metrics("4")
        assert app["time_seconds"] == pytest.approx(236.63668347725635, rel=_RTOL)
        assert app["energy_joules"] == pytest.approx(34726.106811203084, rel=_RTOL)
        assert app["ed2"] == pytest.approx(1944555023.8764334, rel=_RTOL)
        throttled = table.application_metrics("2b@1.6GHz")
        assert throttled["time_seconds"] == pytest.approx(387.0667041469863, rel=_RTOL)
        assert throttled["energy_joules"] == pytest.approx(47818.39708720929, rel=_RTOL)
        assert table.global_optimal_configuration("ed2") == "4"
        assert table.phase_optimal_configurations("time_seconds") == {
            "lu.jacld_blts": "4",
            "lu.jacu_buts": "4",
            "lu.rhs": "2b",
            "lu.l2norm": "4",
            "lu.add": "4",
        }


class TestGoldenHomogeneousTraining:
    """FT+IS DVFS training collection at seed 11."""

    GOLDEN_FIRST_FEATURES = (
        5.920484152008609,
        0.04337500275123553,
        1.9642001793001946,
        0.0039973772722959565,
        0.041021282548610344,
        0.0037555572650664337,
        0.003850090835258569,
        0.629872333658491,
        0.0009628605537034856,
        0.4955282578118235,
        0.007518235669613888,
        3.4665937455024505,
        1.7124139121672055,
    )
    GOLDEN_FIRST_TARGETS = {
        "1": 1.4973216471870736,
        "1@2GHz": 1.52072766058195,
        "1@1.6GHz": 1.5448770563665386,
        "2a": 2.922910607865549,
        "2a@1.6GHz": 3.0169542227956256,
        "2b@2GHz": 2.9681601871517524,
        "3": 4.355069373095266,
        "4": 5.763626267016493,
        "4@2GHz": 5.865520006901793,
        "4@1.6GHz": 5.9689458978798235,
    }

    def test_dvfs_dataset_matches_pre_hetero_capture(
        self, golden_machine, golden_suite
    ):
        dataset = collect_training_dataset(
            golden_machine,
            [golden_suite.get("FT"), golden_suite.get("IS")],
            samples_per_phase=2,
            measurement_noise=0.10,
            seed=11,
            pstate_table=golden_machine.pstate_table,
        )
        assert len(dataset) == 18
        assert dataset.target_configurations == (
            "1", "1@2GHz", "1@1.6GHz",
            "2a", "2a@2GHz", "2a@1.6GHz",
            "2b", "2b@2GHz", "2b@1.6GHz",
            "3", "3@2GHz", "3@1.6GHz",
            "4", "4@2GHz", "4@1.6GHz",
        )
        first = dataset.samples[0]
        assert first.phase_id == "FT:ft.fft_x"
        assert first.features == pytest.approx(self.GOLDEN_FIRST_FEATURES, rel=_RTOL)
        for config, ipc in self.GOLDEN_FIRST_TARGETS.items():
            assert first.targets[config] == pytest.approx(ipc, rel=_RTOL)
        last = dataset.samples[-1]
        assert last.phase_id == "IS:is.verify"
        assert last.targets["2a@1.6GHz"] == pytest.approx(
            1.7479450763073539, rel=_RTOL
        )
        assert last.targets["4"] == pytest.approx(2.3220526208352443, rel=_RTOL)
