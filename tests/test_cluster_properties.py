"""Property-based tests (hypothesis) for the fleet scheduler.

The invariants the water-filling design claims *by construction* are
checked here over random fleets, job streams and caps:

* the fleet's total draw never exceeds the cap;
* watts are conserved — the reported total is exactly the sum of the
  per-node draws, and the upgrade audit trail accounts for every watt
  above the minimum feasible draw;
* raising the cap never lowers fleet throughput (the prefix property);
* a one-node fleet reproduces plain single-machine grid selection,
  bit for bit.

The node machines are module-level and shared across examples so their
execution memos stay warm — each example costs memo lookups, not fresh
simulation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Fleet, FleetJob, FleetScheduler, Node
from repro.machine import Machine, WorkRequest

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Shared noise-free machines (warm memos across examples).  Nodes are
#: rebuilt per example — they are cheap wrappers — but wrap these.
_MACHINES = [Machine(noise_sigma=0.0) for _ in range(3)]


@st.composite
def work_requests(draw) -> WorkRequest:
    """Random but physically admissible phase characterizations.

    Coarsely quantized relative to the unconstrained strategy in
    ``test_properties.py`` so the shared machines' memos serve repeated
    fingerprints across examples.
    """
    mem = draw(st.floats(0.1, 0.5))
    return WorkRequest(
        instructions=draw(st.sampled_from([1e8, 4e8, 1.6e9])),
        mem_fraction=round(mem, 2),
        flop_fraction=round(draw(st.floats(0.0, 0.9 - mem)), 2),
        l1_miss_rate=round(draw(st.floats(0.0, 0.25)), 2),
        l2_miss_rate_solo=round(draw(st.floats(0.0, 0.8)), 2),
        working_set_mb=draw(st.sampled_from([0.5, 2.0, 8.0])),
        serial_fraction=round(draw(st.floats(0.0, 0.2)), 2),
        load_imbalance=draw(st.sampled_from([1.0, 1.1])),
        barriers=draw(st.integers(0, 8)),
    )


@st.composite
def fleets(draw) -> Fleet:
    num_nodes = draw(st.integers(1, 3))
    nodes = []
    for i in range(num_nodes):
        factor = draw(st.sampled_from([1.0, 1.0, 1.25, 1.5]))
        nodes.append(
            Node(f"node-{i}", machine=_MACHINES[i], straggler_factor=factor)
        )
    return Fleet(nodes)


@st.composite
def job_streams(draw):
    works = draw(st.lists(work_requests(), min_size=1, max_size=3))
    return [
        FleetJob(
            name=f"job-{i}",
            work=work,
            weight=draw(st.sampled_from([1.0, 4.0, 25.0])),
        )
        for i, work in enumerate(works)
    ]


class TestCapIsNeverExceeded:
    @given(fleet=fleets(), jobs=job_streams(), fraction=st.floats(0.0, 1.25))
    @_SETTINGS
    def test_total_power_at_or_under_any_feasible_cap(
        self, fleet, jobs, fraction
    ):
        scheduler = FleetScheduler(fleet)
        unconstrained = scheduler.schedule(jobs)
        floor = unconstrained.min_feasible_watts
        peak = unconstrained.total_power_watts
        cap = floor + fraction * (peak - floor)
        schedule = scheduler.schedule(jobs, cap)
        assert schedule.total_power_watts <= cap
        # Per-node draws respect their budgets, and every applied upgrade
        # bought throughput with strictly positive watts.
        for alloc in schedule.allocations.values():
            if not alloc.idle:
                assert alloc.power_watts <= alloc.budget_watts
        for step in schedule.upgrades:
            assert step.delta_watts > 0
            assert step.delta_throughput > 0


class TestBudgetConservation:
    @given(fleet=fleets(), jobs=job_streams(), fraction=st.floats(0.0, 1.0))
    @_SETTINGS
    def test_total_is_exactly_the_sum_of_node_draws(self, fleet, jobs, fraction):
        scheduler = FleetScheduler(fleet)
        unconstrained = scheduler.schedule(jobs)
        cap = unconstrained.min_feasible_watts + fraction * (
            unconstrained.total_power_watts - unconstrained.min_feasible_watts
        )
        schedule = scheduler.schedule(jobs, cap)
        idle = sum(
            alloc.power_watts
            for name, alloc in sorted(schedule.allocations.items())
            if alloc.idle
        )
        active = sum(
            alloc.power_watts
            for name, alloc in sorted(schedule.allocations.items())
            if not alloc.idle
        )
        assert schedule.total_power_watts == pytest.approx(
            idle + active, rel=1e-12
        )
        # The audit trail accounts for every watt redistributed above the
        # minimum feasible draw (telescoped per node, hence the tolerance).
        assert schedule.total_power_watts == pytest.approx(
            schedule.min_feasible_watts
            + sum(step.delta_watts for step in schedule.upgrades),
            rel=1e-9,
        )


class TestCapMonotonicity:
    @given(
        fleet=fleets(),
        jobs=job_streams(),
        fractions=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
    )
    @_SETTINGS
    def test_raising_the_cap_never_lowers_throughput(
        self, fleet, jobs, fractions
    ):
        scheduler = FleetScheduler(fleet)
        unconstrained = scheduler.schedule(jobs)
        floor = unconstrained.min_feasible_watts
        span = unconstrained.total_power_watts - floor
        low, high = sorted(fractions)
        schedule_low = scheduler.schedule(jobs, floor + low * span)
        schedule_high = scheduler.schedule(jobs, floor + high * span)
        assert schedule_high.throughput >= schedule_low.throughput
        # The lower cap's upgrade sequence is an exact prefix of the
        # higher cap's — the structural fact monotonicity rests on.
        low_steps = [
            (s.node, s.budget_watts) for s in schedule_low.upgrades
        ]
        high_steps = [
            (s.node, s.budget_watts) for s in schedule_high.upgrades
        ]
        assert high_steps[: len(low_steps)] == low_steps


class TestDegenerateFleet:
    @given(jobs=job_streams())
    @_SETTINGS
    def test_one_node_fleet_matches_single_machine_selection(self, jobs):
        fleet = Fleet([Node("solo", machine=_MACHINES[0])])
        schedule = FleetScheduler(fleet).schedule(jobs)
        grid = _MACHINES[0].execute_grid(
            [job.work for job in jobs], _MACHINES[0].default_configurations()
        )
        best = grid.best("time_seconds")
        times = grid.metric("time_seconds")
        for row, (decision, config) in enumerate(zip(schedule.decisions, best)):
            assert decision.configuration == config.name
            assert decision.time_seconds == times[row, grid.index_of(config.name)]

    @given(jobs=job_streams(), fraction=st.floats(0.0, 1.0))
    @_SETTINGS
    def test_schedules_are_bit_reproducible(self, jobs, fraction):
        fleet = Fleet(
            [
                Node("node-0", machine=_MACHINES[0]),
                Node("node-1", machine=_MACHINES[1], straggler_factor=1.25),
            ]
        )
        scheduler = FleetScheduler(fleet)
        unconstrained = scheduler.schedule(jobs)
        cap = unconstrained.min_feasible_watts + fraction * (
            unconstrained.total_power_watts - unconstrained.min_feasible_watts
        )
        assert (
            scheduler.schedule(jobs, cap).to_dict()
            == scheduler.schedule(jobs, cap).to_dict()
        )
