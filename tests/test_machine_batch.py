"""Equivalence tests for the vectorized batch execution engine.

``Machine.execute_batch`` must reproduce looped ``Machine.execute`` calls to
tight tolerance across the full placement × P-state cross-product — for the
headline metric arrays, the lazily materialized :class:`ExecutionResult`
objects and the synthesized hardware event counts — on every NAS workload
phase.  The batch engine is the foundation of oracle construction and
training collection, so any divergence here silently corrupts everything
downstream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import (
    CONFIG_2B,
    CONFIG_4,
    Machine,
    ThreadPlacement,
    WorkRequest,
    dvfs_configurations,
    enumerate_configurations,
    standard_configurations,
)
from repro.machine.topology import dual_socket_xeon

#: Relative tolerance for batch-vs-loop equivalence.  The vectorized kernel
#: mirrors the scalar arithmetic operation for operation, so agreement is
#: at the last-ulp level; 1e-12 leaves margin for platform libm differences.
_RTOL = 1e-12

_SCALAR_METRICS = (
    "time_seconds",
    "cycles",
    "instructions",
    "ipc",
    "power_watts",
    "energy_joules",
    "frequency_ghz",
)


@pytest.fixture(scope="module")
def cross_product(machine):
    """The full placement × P-state cross-product of the default machine."""
    return dvfs_configurations(
        standard_configurations(machine.topology), machine.pstate_table
    )


def _assert_result_equivalent(reference, materialized):
    for attribute in _SCALAR_METRICS:
        assert getattr(materialized, attribute) == pytest.approx(
            getattr(reference, attribute), rel=_RTOL
        ), attribute
    assert materialized.thread_ipcs == pytest.approx(
        reference.thread_ipcs, rel=_RTOL
    )
    assert materialized.pstate == reference.pstate
    assert set(materialized.event_counts) == set(reference.event_counts)
    for event, value in reference.event_counts.items():
        assert materialized.event_counts[event] == pytest.approx(
            value, rel=_RTOL, abs=1e-9
        ), event
    assert materialized.bus.utilization == pytest.approx(
        reference.bus.utilization, rel=_RTOL
    )
    assert materialized.power.total_watts == pytest.approx(
        reference.power.total_watts, rel=_RTOL
    )


class TestCrossProductEquivalence:
    def test_every_nas_phase_matches_looped_execute(
        self, machine, suite, cross_product
    ):
        """Noise-free batch == loop across the whole suite × cross-product."""
        batch_machine = Machine(noise_sigma=0.0)
        for workload in suite:
            for phase in workload.phases:
                batch = batch_machine.execute_batch(
                    phase.work, cross_product, use_memo=False
                )
                assert len(batch) == len(cross_product)
                for index, config in enumerate(cross_product):
                    reference = machine.execute(
                        phase.work, config, apply_noise=False
                    )
                    assert float(batch.time_seconds[index]) == pytest.approx(
                        reference.time_seconds, rel=_RTOL
                    ), (workload.name, phase.name, config.name)
                    assert float(batch.ipc[index]) == pytest.approx(
                        reference.ipc, rel=_RTOL
                    )
                    assert float(batch.power_watts[index]) == pytest.approx(
                        reference.power_watts, rel=_RTOL
                    )

    def test_materialized_results_match_in_full(self, machine, suite, cross_product):
        """Lazily materialized ExecutionResults agree field by field."""
        work = suite.get("SP").phases[0].work
        batch = machine.execute_batch(work, cross_product, use_memo=False)
        for index, config in enumerate(cross_product):
            reference = machine.execute(work, config, apply_noise=False)
            _assert_result_equivalent(reference, batch.result(index))

    def test_default_configurations_are_the_cross_product(
        self, machine, cross_product
    ):
        batch = machine.execute_batch(WorkRequest(instructions=1.5e8), use_memo=False)
        assert batch.names() == [c.name for c in cross_product]

    def test_heterogeneous_thread_counts_on_dual_socket(self, suite):
        """Padded rows (1..8 threads) match the scalar path on 8 cores."""
        topology = dual_socket_xeon()
        machine = Machine(topology=topology, noise_sigma=0.0)
        configs = enumerate_configurations(topology)
        work = suite.get("IS").phases[0].work
        batch = machine.execute_batch(work, configs, use_memo=False)
        for index, config in enumerate(configs):
            reference = machine.execute(work, config, apply_noise=False)
            _assert_result_equivalent(reference, batch.result(index))

    def test_noisy_batch_consumes_the_scalar_rng_stream(self, suite, cross_product):
        """apply_noise=True draws one jitter per cell, in input order."""
        work = suite.get("CG").phases[0].work
        loop_machine = Machine(seed=911, noise_sigma=0.01)
        batch_machine = Machine(seed=911, noise_sigma=0.01)
        looped = [
            loop_machine.execute(work, config, apply_noise=True)
            for config in cross_product
        ]
        batch = batch_machine.execute_batch(
            work, cross_product, apply_noise=True
        )
        for index, reference in enumerate(looped):
            assert float(batch.time_seconds[index]) == pytest.approx(
                reference.time_seconds, rel=_RTOL
            )


class TestBatchResultInterface:
    def test_accepts_raw_placements(self, machine, compute_work):
        placement = ThreadPlacement((0, 2))
        batch = machine.execute_batch(compute_work, [placement], use_memo=False)
        reference = machine.execute(compute_work, placement, apply_noise=False)
        assert float(batch.time_seconds[0]) == pytest.approx(
            reference.time_seconds, rel=_RTOL
        )

    def test_empty_configuration_list_rejected(self, machine, compute_work):
        with pytest.raises(ValueError):
            machine.execute_batch(compute_work, [])

    def test_unknown_core_rejected(self, machine, compute_work):
        with pytest.raises(KeyError):
            machine.execute_batch(compute_work, [ThreadPlacement((0, 9))])

    def test_metric_and_lookup_helpers(self, machine, compute_work, cross_product):
        batch = machine.execute_batch(compute_work, cross_product)
        by_name = batch.metric_by_name("time_seconds")
        assert set(by_name) == {c.name for c in cross_product}
        index = batch.index_of("2b@1.6GHz")
        assert by_name["2b@1.6GHz"] == float(batch.time_seconds[index])
        with pytest.raises(KeyError):
            batch.index_of("nonexistent")
        with pytest.raises(KeyError):
            batch.metric("not_a_metric")

    def test_duplicate_names_resolve_to_first_occurrence(
        self, machine, compute_work
    ):
        """index_of, result_for and metric_by_name agree on duplicates."""
        from repro.machine import CONFIG_2B, Configuration

        low = Configuration(
            "2b", CONFIG_2B.placement, list(machine.pstate_table)[-1]
        )
        batch = machine.execute_batch(compute_work, [CONFIG_2B, low], use_memo=False)
        assert batch.index_of("2b") == 0
        assert batch.metric_by_name("time_seconds")["2b"] == float(
            batch.time_seconds[0]
        )
        assert batch.result_for("2b").frequency_ghz == float(
            batch.frequency_ghz[0]
        )

    def test_derived_metric_arrays_are_consistent(
        self, machine, compute_work, cross_product
    ):
        batch = machine.execute_batch(compute_work, cross_product)
        assert np.allclose(
            batch.energy_joules, batch.power_watts * batch.time_seconds
        )
        assert np.allclose(batch.edp, batch.energy_joules * batch.time_seconds)
        assert np.allclose(
            batch.ed2, batch.energy_joules * batch.time_seconds ** 2
        )

    def test_best_matches_argmin_of_loop(self, machine, compute_work, cross_product):
        batch = machine.execute_batch(compute_work, cross_product)
        times = {
            c.name: machine.execute(compute_work, c, apply_noise=False).time_seconds
            for c in cross_product
        }
        assert batch.best("time_seconds").name == min(times, key=times.get)

    def test_results_materialize_every_cell_once(self, machine, compute_work):
        batch = machine.execute_batch(compute_work, [CONFIG_2B, CONFIG_4])
        results = batch.results()
        assert len(results) == 2
        assert results[0] is batch.result(0)  # cached, not rebuilt
