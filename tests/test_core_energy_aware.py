"""Tests for energy-aware selection over the placement × frequency space.

Covers the DVFS-aware training pipeline (targets spanning the cross-product),
the objective functions of :class:`ConfigurationSelector` with the analytic
:class:`EnergyCostModel`, the :class:`EnergyAwarePolicy` end to end, and the
acceptance property that a single batched ``predict_batch`` call scores the
entire placement × frequency cross-product.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ACTOR,
    ConfigurationSelector,
    EnergyAwarePolicy,
    EnergyCostModel,
    OBJECTIVES,
    PredictionPolicy,
    train_predictor_bundle,
)
from repro.machine import (
    Machine,
    configuration_by_name,
    default_pstate_table,
    dvfs_configurations,
    quad_core_xeon,
    standard_configurations,
)
from repro.openmp import OpenMPRuntime


@pytest.fixture(scope="module")
def table():
    return default_pstate_table()


@pytest.fixture(scope="module")
def dvfs_bundle(machine, mini_training_workloads, table):
    """A regression bundle over the placement × frequency cross-product."""
    return train_predictor_bundle(
        machine,
        mini_training_workloads,
        linear=True,
        pstate_table=table,
    )


@pytest.fixture(scope="module")
def cost_model(table):
    candidates = dvfs_configurations(standard_configurations(), table)
    return EnergyCostModel(candidates, topology=quad_core_xeon(), pstate_table=table)


class TestDVFSTraining:
    def test_targets_span_the_cross_product(self, dvfs_bundle, table):
        expected = {
            c.name for c in dvfs_configurations(standard_configurations(), table)
        }
        # The whole cross-product is modelled, including the sample
        # placement's lower P-states (its nominal point is measured online).
        assert set(dvfs_bundle.target_configurations) == expected
        assert len(dvfs_bundle.target_configurations) == 5 * len(table)

    def test_one_predict_batch_call_scores_the_whole_cross_product(
        self, dvfs_bundle, table
    ):
        predictor = dvfs_bundle.full
        batch = np.tile(
            np.linspace(0.5, 1.5, predictor.event_set.num_features), (6, 1)
        ) * np.linspace(0.9, 1.1, 6)[:, None]
        predictions = predictor.predict_batch(batch)
        # One call returns one score vector per (placement, P-state) target.
        assert set(predictions) == set(dvfs_bundle.target_configurations)
        for vector in predictions.values():
            assert vector.shape == (6,)
            assert np.all(np.isfinite(vector))

    def test_batched_cached_path_issues_exactly_one_model_call(
        self, machine, mini_training_workloads, table, suite
    ):
        bundle = train_predictor_bundle(
            machine, mini_training_workloads, linear=True, pstate_table=table
        )
        calls = []
        original = bundle.full.predict_batch

        def counting(features):
            calls.append(np.atleast_2d(features).shape[0])
            return original(features)

        bundle.full.predict_batch = counting  # type: ignore[method-assign]
        samples = []
        for workload in mini_training_workloads[:3]:
            for phase in workload.phases[:2]:
                result = machine.execute(phase.work, configuration_by_name("4"))
                rates = {
                    e: result.event_counts.get(e, 0.0) / result.cycles
                    for e in bundle.full.event_set.events
                }
                samples.append((result.ipc, rates))
        predictions = bundle.predict_batch_from_rates(samples)
        assert len(calls) == 1 and calls[0] == len(samples)
        assert all(
            set(p) == set(bundle.target_configurations) for p in predictions
        )

    def test_lower_frequency_targets_predict_higher_ipc(self, dvfs_bundle, machine):
        # Ground truth: IPC (per-cycle) rises as the clock drops.  The
        # trained cross-product models must reproduce that ordering for a
        # feature vector drawn from the training distribution.
        from repro.workloads import nas_suite

        suite = nas_suite(machine=Machine(noise_sigma=0.0))
        phase = suite.get("MG").phases[0]
        result = machine.execute(phase.work, configuration_by_name("4"))
        rates = {
            e: result.event_counts.get(e, 0.0) / result.cycles
            for e in dvfs_bundle.full.event_set.events
        }
        predictions = dvfs_bundle.full.predict_from_rates(result.ipc, rates)
        assert predictions["4@1.6GHz"] > predictions["4@2GHz"]


class TestEnergyCostModel:
    def test_relative_time_uses_ipc_and_frequency(self, cost_model):
        # Same predicted IPC: the higher clock finishes first.
        assert cost_model.relative_time("4", 2.0) < cost_model.relative_time(
            "4@1.6GHz", 2.0
        )
        # Same configuration: higher IPC finishes first.
        assert cost_model.relative_time("4", 2.0) < cost_model.relative_time("4", 1.0)

    def test_power_estimate_orders_pstates_and_thread_counts(self, cost_model):
        assert cost_model.power_watts("4@1.6GHz", 2.0) < cost_model.power_watts(
            "4", 2.0
        )
        assert cost_model.power_watts("1", 1.0) < cost_model.power_watts("4", 1.0)

    def test_scores_cover_all_objectives(self, cost_model):
        for objective in OBJECTIVES:
            value = cost_model.score("2b@2GHz", 1.5, objective)
            assert np.isfinite(value)
        assert cost_model.score("4", 2.0, "ipc") == -2.0
        with pytest.raises(ValueError):
            cost_model.score("4", 2.0, "speed")
        with pytest.raises(KeyError):
            cost_model.score("nope", 2.0, "ed2")

    def test_heterogeneous_candidates_score_with_per_core_physics(self, table):
        candidates = dvfs_configurations(
            standard_configurations(), table, include_heterogeneous=True
        )
        model = EnergyCostModel(
            candidates, topology=quad_core_xeon(), pstate_table=table
        )
        ladder = "4@2.4/2.4/1.6/1.6GHz"
        # IPC-to-time conversion uses the master (thread-0) clock the
        # simulator defines heterogeneous IPC in, not the slow block.
        assert model.frequency_ghz(ladder) == pytest.approx(2.4)
        assert not model.is_nominal(ladder)
        # Per-core power: the ladder sits strictly between its uniforms.
        assert (
            model.power_watts("4@1.6GHz", 2.0)
            < model.power_watts(ladder, 2.0)
            < model.power_watts("4", 2.0)
        )

    def test_relative_time_matches_true_time_when_fed_true_ipcs(self, machine, table):
        """time = instr / (IPC · f_clock) holds *exactly* per candidate, so
        feeding ground-truth IPCs must reproduce ground-truth time ratios —
        heterogeneous ladders included (their IPC is master-clock-based)."""
        from repro.workloads import nas_suite

        candidates = dvfs_configurations(
            standard_configurations(), table, include_heterogeneous=True
        )
        model = EnergyCostModel(
            candidates, topology=quad_core_xeon(), pstate_table=table
        )
        work = nas_suite(machine=Machine(noise_sigma=0.0)).get("CG").phases[0].work
        # Exactness holds within a placement family: the aggregate IPC's
        # instruction count (work + per-barrier sync instructions, which
        # scale with the thread count) cancels only between candidates of
        # the same placement.
        families = [
            ("4", ["4@1.6GHz", "4@2.4/1.6/1.6/1.6GHz", "4@2.4/2.4/1.6/1.6GHz"]),
            ("2b", ["2b@1.6GHz", "2b@2.4/1.6GHz"]),
        ]
        for reference, others in families:
            truth = {
                name: machine.execute(
                    work, configuration_by_name(name, table), apply_noise=False
                )
                for name in [reference] + others
            }
            for name in others:
                true_ratio = truth[name].time_seconds / truth[reference].time_seconds
                estimated_ratio = model.relative_time(
                    name, truth[name].ipc
                ) / model.relative_time(reference, truth[reference].ipc)
                assert estimated_ratio == pytest.approx(true_ratio, rel=1e-9), name

    def test_validation(self, table):
        with pytest.raises(ValueError):
            EnergyCostModel([])
        candidates = standard_configurations()
        with pytest.raises(ValueError):
            EnergyCostModel(candidates, assumed_stall_fraction=2.0)
        with pytest.raises(ValueError):
            EnergyCostModel(candidates, assumed_bus_utilization=-0.1)


class TestObjectiveSelector:
    def test_non_ipc_objective_requires_cost_model(self):
        with pytest.raises(ValueError):
            ConfigurationSelector(objective="ed2")
        with pytest.raises(ValueError):
            ConfigurationSelector(objective="speed")

    def test_staging_and_guard_rejected_for_ipc_objective(self, cost_model):
        # Silently ignoring these would hide a caller's mistake.
        with pytest.raises(ValueError):
            ConfigurationSelector(
                objective="ipc", cost_model=cost_model, two_stage=True
            )
        with pytest.raises(ValueError):
            ConfigurationSelector(
                objective="ipc", cost_model=cost_model, guard_band=0.1
            )
        with pytest.raises(ValueError):
            ConfigurationSelector(
                objective="ed2", cost_model=cost_model, guard_band=1.5
            )

    def test_time_objective_prefers_high_frequency_at_equal_ipc(self, cost_model):
        selector = ConfigurationSelector(objective="time", cost_model=cost_model)
        predictions = {"4": 2.0, "4@2GHz": 2.0, "4@1.6GHz": 2.0}
        ranked = selector.rank(predictions)
        assert ranked.best == "4"
        assert ranked.ranking == ("4", "4@2GHz", "4@1.6GHz")
        assert ranked.objective == "time"
        assert set(ranked.scores) == set(predictions)

    def test_ipc_objective_unchanged_from_paper(self, cost_model):
        selector = ConfigurationSelector(objective="ipc", cost_model=cost_model)
        ranked = selector.rank({"1": 1.2, "2b": 2.2, "4": 1.9})
        assert ranked.best == "2b"

    def test_ed2_objective_can_prefer_lower_frequency(self, cost_model):
        # If the predicted IPC gain at the low P-state is large enough
        # (memory-bound phase), the ED² score favours the lower clock.
        selector = ConfigurationSelector(objective="ed2", cost_model=cost_model)
        predictions = {"4": 1.0, "4@1.6GHz": 1.55}
        assert selector.select(predictions) == "4@1.6GHz"
        # A compute-bound phase (IPC barely moves) stays at nominal.
        predictions = {"4": 1.0, "4@1.6GHz": 1.02}
        assert selector.select(predictions) == "4"


class TestEnergyAwarePolicy:
    def test_policy_selects_over_the_cross_product(
        self, machine, dvfs_bundle, suite, table
    ):
        runtime = OpenMPRuntime(Machine(), seed=99)
        actor = ACTOR(runtime)
        workload = suite.get("MG")
        policy = EnergyAwarePolicy(dvfs_bundle, objective="ed2", pstate_table=table)
        report = actor.run_with_policy(workload, policy)
        decisions = policy.decisions()
        assert set(decisions) == {p.name for p in workload.phases}
        # Every decision resolves to a real cross-product configuration.
        for name in decisions.values():
            config = configuration_by_name(name, table)
            assert config.pstate is not None or "@" not in name
        # Rankings cover the full cross-product plus the measured sample.
        for ranking in policy.rankings().values():
            assert len(ranking.ranking) == 5 * len(table)
            assert ranking.objective == "ed2"
        assert report.time_seconds > 0 and report.energy_joules > 0

    def test_objective_is_reflected_in_policy_name(self, dvfs_bundle, table):
        assert (
            EnergyAwarePolicy(dvfs_bundle, objective="energy", pstate_table=table).name
            == "energy-energy"
        )

    def test_ed2_policy_not_worse_than_time_policy_on_memory_bound_suite(
        self, machine, dvfs_bundle, mini_training_workloads, suite, table
    ):
        # Deterministic machine so the comparison is noise-free.
        flat_bundle = train_predictor_bundle(
            machine, mini_training_workloads, linear=True
        )
        wins = 0
        names = ["CG", "IS", "MG"]
        for index, name in enumerate(names):
            workload = suite.get(name)
            runtime = OpenMPRuntime(Machine(noise_sigma=0.0), seed=7 + index)
            actor = ACTOR(runtime)
            r_time = actor.run_with_policy(workload, PredictionPolicy(flat_bundle))
            r_ed2 = actor.run_with_policy(
                workload,
                EnergyAwarePolicy(dvfs_bundle, objective="ed2", pstate_table=table),
            )
            if r_ed2.ed2 <= r_time.ed2 * 1.001:
                wins += 1
        assert wins >= 2, f"ED² policy beat time policy on only {wins} of {names}"
