"""Tests for configuration ranking/selection and the training dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConfigurationSelector,
    FULL_EVENT_SET,
    PredictionDataset,
    REDUCED_EVENT_SET,
    TrainingSample,
    rank_of_selection,
)


class TestConfigurationSelector:
    def test_selects_highest_predicted_ipc(self):
        selector = ConfigurationSelector()
        predictions = {"1": 0.5, "2a": 0.8, "2b": 1.2, "3": 1.0}
        assert selector.select(predictions) == "2b"

    def test_measured_sample_participates_in_ranking(self):
        selector = ConfigurationSelector()
        predictions = {"1": 0.5, "2a": 0.8, "2b": 1.2, "3": 1.0}
        ranked = selector.rank(predictions, measured_sample=("4", 2.0))
        assert ranked.best == "4"
        assert ranked.ranking[0] == "4"
        assert ranked.predicted_ipc("4") == pytest.approx(2.0)

    def test_ranking_is_sorted_descending(self):
        selector = ConfigurationSelector()
        ranked = selector.rank({"1": 0.2, "2b": 0.9, "3": 0.4})
        values = [ranked.predictions[name] for name in ranked.ranking]
        assert values == sorted(values, reverse=True)

    def test_tie_break_prefers_fewer_threads(self):
        selector = ConfigurationSelector()
        ranked = selector.rank({"4": 1.0, "1": 1.0, "2b": 1.0})
        assert ranked.best == "1"

    def test_empty_predictions_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSelector().rank({})

    def test_rank_of_selection(self):
        true_ipc = {"1": 0.5, "2a": 0.7, "2b": 1.4, "3": 1.0, "4": 1.2}
        assert rank_of_selection("2b", true_ipc) == 1
        assert rank_of_selection("4", true_ipc) == 2
        assert rank_of_selection("1", true_ipc) == 5

    def test_rank_of_selection_with_time_metric(self):
        times = {"1": 10.0, "2b": 5.0, "4": 7.0}
        assert rank_of_selection("2b", times, higher_is_better=False) == 1
        assert rank_of_selection("1", times, higher_is_better=False) == 3

    def test_rank_of_selection_unknown_config(self):
        with pytest.raises(KeyError):
            rank_of_selection("9", {"1": 1.0})


def _sample(phase: str, workload: str, value: float, event_set=REDUCED_EVENT_SET):
    features = tuple([value] + [value / 10.0] * event_set.num_events)
    return TrainingSample(
        phase_id=f"{workload}:{phase}",
        workload=workload,
        features=features,
        targets={"1": value * 0.5, "2a": value * 0.7, "2b": value * 0.9, "3": value},
    )


class TestPredictionDataset:
    def _dataset(self):
        ds = PredictionDataset(
            event_set=REDUCED_EVENT_SET,
            sample_configuration="4",
            target_configurations=("1", "2a", "2b", "3"),
        )
        ds.extend(
            [
                _sample("p0", "A", 1.0),
                _sample("p1", "A", 2.0),
                _sample("q0", "B", 3.0),
            ]
        )
        return ds

    def test_requires_target_configurations(self):
        with pytest.raises(ValueError):
            PredictionDataset(
                event_set=REDUCED_EVENT_SET,
                sample_configuration="4",
                target_configurations=(),
            )

    def test_add_validates_feature_length(self):
        ds = self._dataset()
        bad = _sample("x", "C", 1.0, event_set=FULL_EVENT_SET)
        with pytest.raises(ValueError):
            ds.add(bad)

    def test_add_validates_targets(self):
        ds = self._dataset()
        sample = TrainingSample(
            phase_id="C:x",
            workload="C",
            features=tuple([1.0] * REDUCED_EVENT_SET.num_features),
            targets={"1": 1.0},
        )
        with pytest.raises(KeyError):
            ds.add(sample)

    def test_matrices_shapes(self):
        ds = self._dataset()
        assert ds.feature_matrix().shape == (3, REDUCED_EVENT_SET.num_features)
        assert ds.target_vector("2b").shape == (3,)
        assert np.allclose(ds.target_vector("3"), [1.0, 2.0, 3.0])

    def test_empty_dataset_matrix_raises(self):
        ds = PredictionDataset(
            event_set=REDUCED_EVENT_SET,
            sample_configuration="4",
            target_configurations=("1",),
        )
        with pytest.raises(ValueError):
            ds.feature_matrix()

    def test_workloads_and_phase_ids(self):
        ds = self._dataset()
        assert ds.workloads() == ["A", "B"]
        assert len(ds.phase_ids()) == 3

    def test_leave_one_out_split(self):
        ds = self._dataset()
        train, held = ds.leave_one_out("A")
        assert train.workloads() == ["B"]
        assert held.workloads() == ["A"]
        assert len(train) + len(held) == len(ds)

    def test_filter_include_exclude(self):
        ds = self._dataset()
        assert ds.filter_workloads(include=["B"]).workloads() == ["B"]
        assert ds.filter_workloads(exclude=["B"]).workloads() == ["A"]

    def test_summary_counts(self):
        assert self._dataset().summary() == {"A": 2, "B": 1}

    def test_missing_target_lookup_raises(self):
        sample = _sample("p", "A", 1.0)
        with pytest.raises(KeyError):
            sample.target_for("4")
