"""Unit tests for the processor topology model."""

from __future__ import annotations

import pytest

from repro.machine.topology import (
    CacheDescriptor,
    CoreDescriptor,
    Topology,
    dual_socket_xeon,
    many_core,
    quad_core_xeon,
)


class TestQuadCoreXeon:
    def test_has_four_cores_and_two_caches(self, topology):
        assert topology.num_cores == 4
        assert topology.num_caches == 2

    def test_cores_zero_and_one_share_a_cache(self, topology):
        assert topology.tightly_coupled(0, 1)
        assert topology.tightly_coupled(2, 3)

    def test_cores_on_different_dies_are_loosely_coupled(self, topology):
        assert topology.loosely_coupled(0, 2)
        assert topology.loosely_coupled(1, 3)
        assert topology.loosely_coupled(0, 3)

    def test_cache_of_returns_the_right_domain(self, topology):
        assert topology.cache_of(0).cache_id == 0
        assert topology.cache_of(3).cache_id == 1

    def test_cores_of_cache(self, topology):
        assert topology.cores_of_cache(0) == [0, 1]
        assert topology.cores_of_cache(1) == [2, 3]

    def test_default_l2_size_is_4mb(self, topology):
        assert topology.cache(0).size_mb == pytest.approx(4.0)
        assert topology.cache(0).size_bytes == 4 * 1024 * 1024

    def test_tightly_coupled_pairs(self, topology):
        assert topology.tightly_coupled_pairs() == [(0, 1), (2, 3)]

    def test_loosely_coupled_pairs(self, topology):
        pairs = topology.loosely_coupled_pairs()
        assert (0, 2) in pairs and (1, 3) in pairs
        assert (0, 1) not in pairs

    def test_cache_sharers_groups_by_cache(self, topology):
        groups = topology.cache_sharers([0, 1, 2])
        assert groups == {0: [0, 1], 1: [2]}

    def test_core_ids_sorted(self, topology):
        assert topology.core_ids() == [0, 1, 2, 3]

    def test_describe_mentions_cores_and_bus(self, topology):
        text = topology.describe()
        assert "4 cores" in text
        assert "FSB" in text

    def test_bus_bytes_per_cycle(self, topology):
        # 8.5 GB/s at 2.4 GHz is about 3.54 bytes per cycle.
        assert topology.bus_bytes_per_cycle() == pytest.approx(8.5 / 2.4, rel=1e-6)

    def test_memory_latency_cycles(self, topology):
        assert topology.memory_latency_cycles() == pytest.approx(95.0 * 2.4, rel=1e-6)

    def test_unknown_core_raises(self, topology):
        with pytest.raises(KeyError):
            topology.core(99)

    def test_unknown_cache_raises(self, topology):
        with pytest.raises(KeyError):
            topology.cache(99)

    def test_coupling_requires_distinct_cores(self, topology):
        with pytest.raises(ValueError):
            topology.tightly_coupled(1, 1)


class TestTopologyValidation:
    def test_duplicate_core_ids_rejected(self):
        cache = CacheDescriptor(cache_id=0)
        cores = [CoreDescriptor(0, 0), CoreDescriptor(0, 0)]
        with pytest.raises(ValueError):
            Topology(name="bad", cores=cores, caches=[cache])

    def test_duplicate_cache_ids_rejected(self):
        caches = [CacheDescriptor(cache_id=0), CacheDescriptor(cache_id=0)]
        cores = [CoreDescriptor(0, 0)]
        with pytest.raises(ValueError):
            Topology(name="bad", cores=cores, caches=caches)

    def test_core_referencing_missing_cache_rejected(self):
        caches = [CacheDescriptor(cache_id=0)]
        cores = [CoreDescriptor(0, 5)]
        with pytest.raises(ValueError):
            Topology(name="bad", cores=cores, caches=caches)


class TestAlternativeTopologies:
    def test_dual_socket_has_eight_cores(self):
        topo = dual_socket_xeon()
        assert topo.num_cores == 8
        assert topo.num_caches == 4
        assert topo.tightly_coupled(0, 1)
        assert topo.loosely_coupled(0, 7)

    def test_many_core_shape(self):
        topo = many_core(16, cores_per_cache=4)
        assert topo.num_cores == 16
        assert topo.num_caches == 4
        assert topo.cores_of_cache(0) == [0, 1, 2, 3]

    def test_many_core_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            many_core(0)
        with pytest.raises(ValueError):
            many_core(6, cores_per_cache=4)
        with pytest.raises(ValueError):
            many_core(4, cores_per_cache=0)
