"""Unit tests for the workload abstractions (phases, workloads, suites)."""

from __future__ import annotations

import pytest

from repro.machine import WorkRequest
from repro.workloads import PhaseSpec, Workload, WorkloadSuite


def _phase(name: str, instructions: float = 1e8, invocations: int = 1) -> PhaseSpec:
    return PhaseSpec(
        name=name,
        work=WorkRequest(instructions=instructions),
        invocations_per_timestep=invocations,
    )


class TestPhaseSpec:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            PhaseSpec(name="", work=WorkRequest(instructions=1e8))

    def test_requires_positive_invocations(self):
        with pytest.raises(ValueError):
            PhaseSpec(
                name="p", work=WorkRequest(instructions=1e8), invocations_per_timestep=0
            )

    def test_rejects_negative_variability(self):
        with pytest.raises(ValueError):
            PhaseSpec(name="p", work=WorkRequest(instructions=1e8), variability=-0.1)

    def test_instructions_per_timestep(self):
        phase = _phase("p", instructions=1e8, invocations=3)
        assert phase.instructions_per_timestep == pytest.approx(3e8)

    def test_scaled(self):
        phase = _phase("p", instructions=1e8).scaled(0.5)
        assert phase.work.instructions == pytest.approx(5e7)


class TestWorkload:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            Workload(name="w", phases=(), timesteps=10)

    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(ValueError):
            Workload(name="w", phases=(_phase("a"), _phase("a")), timesteps=10)

    def test_rejects_bad_timesteps(self):
        with pytest.raises(ValueError):
            Workload(name="w", phases=(_phase("a"),), timesteps=0)

    def test_total_instructions(self):
        workload = Workload(
            name="w",
            phases=(_phase("a", 1e8), _phase("b", 2e8, invocations=2)),
            timesteps=10,
        )
        assert workload.total_instructions == pytest.approx(10 * (1e8 + 4e8))

    def test_phase_lookup(self):
        workload = Workload(name="w", phases=(_phase("a"), _phase("b")), timesteps=5)
        assert workload.phase("b").name == "b"
        with pytest.raises(KeyError):
            workload.phase("missing")

    def test_iter_invocations_in_program_order(self):
        workload = Workload(
            name="w", phases=(_phase("a"), _phase("b", invocations=2)), timesteps=2
        )
        sequence = [(step, phase.name) for step, phase in workload.iter_invocations()]
        assert sequence == [
            (0, "a"), (0, "b"), (0, "b"),
            (1, "a"), (1, "b"), (1, "b"),
        ]

    def test_with_timesteps_and_scaled(self):
        workload = Workload(name="w", phases=(_phase("a", 1e8),), timesteps=5)
        assert workload.with_timesteps(20).timesteps == 20
        assert workload.scaled(2.0).phase("a").work.instructions == pytest.approx(2e8)

    def test_num_phases_and_names(self):
        workload = Workload(name="w", phases=(_phase("a"), _phase("b")), timesteps=5)
        assert workload.num_phases == 2
        assert workload.phase_names() == ["a", "b"]


class TestWorkloadSuite:
    def _suite(self):
        return WorkloadSuite(
            name="s",
            workloads=[
                Workload(name="A", phases=(_phase("a1"),), timesteps=3),
                Workload(name="B", phases=(_phase("b1"), _phase("b2")), timesteps=3),
                Workload(name="C", phases=(_phase("c1"),), timesteps=3),
            ],
        )

    def test_duplicate_names_rejected(self):
        workload = Workload(name="A", phases=(_phase("a"),), timesteps=1)
        with pytest.raises(ValueError):
            WorkloadSuite(name="s", workloads=[workload, workload])

    def test_lookup_and_len(self):
        suite = self._suite()
        assert len(suite) == 3
        assert suite.get("B").num_phases == 2
        with pytest.raises(KeyError):
            suite.get("missing")

    def test_add_rejects_duplicates(self):
        suite = self._suite()
        with pytest.raises(ValueError):
            suite.add(Workload(name="A", phases=(_phase("x"),), timesteps=1))

    def test_leave_one_out_split(self):
        suite = self._suite()
        train, held = suite.leave_one_out("B")
        assert held.name == "B"
        assert [w.name for w in train] == ["A", "C"]

    def test_leave_one_out_splits_cover_all(self):
        suite = self._suite()
        held_names = [held.name for _, held in suite.leave_one_out_splits()]
        assert held_names == ["A", "B", "C"]

    def test_leave_one_out_requires_two_workloads(self):
        suite = WorkloadSuite(
            name="solo",
            workloads=[Workload(name="A", phases=(_phase("a"),), timesteps=1)],
        )
        with pytest.raises(ValueError):
            suite.leave_one_out("A")

    def test_subset_preserves_order(self):
        suite = self._suite().subset(["C", "A"])
        assert suite.names() == ["C", "A"]

    def test_total_phases_and_describe(self):
        suite = self._suite()
        assert suite.total_phases() == 4
        assert "3 workloads" in suite.describe()
