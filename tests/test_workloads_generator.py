"""Unit tests for the synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.workloads import GeneratorRanges, SyntheticWorkloadGenerator


class TestSyntheticWorkloadGenerator:
    def test_random_work_within_ranges(self):
        gen = SyntheticWorkloadGenerator(seed=1)
        ranges = gen.ranges
        for _ in range(50):
            work = gen.random_work()
            assert ranges.mem_fraction[0] <= work.mem_fraction <= ranges.mem_fraction[1]
            assert ranges.working_set_mb[0] <= work.working_set_mb <= ranges.working_set_mb[1]
            assert ranges.serial_fraction[0] <= work.serial_fraction <= ranges.serial_fraction[1]
            assert work.mem_fraction + work.flop_fraction <= 0.95

    def test_reproducible_with_same_seed(self):
        a = SyntheticWorkloadGenerator(seed=42).random_work()
        b = SyntheticWorkloadGenerator(seed=42).random_work()
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticWorkloadGenerator(seed=1).random_work()
        b = SyntheticWorkloadGenerator(seed=2).random_work()
        assert a != b

    def test_random_phase_names(self):
        gen = SyntheticWorkloadGenerator(seed=0)
        phase = gen.random_phase("syn.p0")
        assert phase.name == "syn.p0"
        assert phase.variability >= 0.0

    def test_random_workload_structure(self):
        gen = SyntheticWorkloadGenerator(seed=3)
        workload = gen.random_workload("SYN", num_phases=5, timesteps=17)
        assert workload.num_phases == 5
        assert workload.timesteps == 17
        assert workload.scaling_class == "synthetic"
        assert len(set(workload.phase_names())) == 5

    def test_random_workload_defaults_within_bounds(self):
        gen = SyntheticWorkloadGenerator(seed=4)
        workload = gen.random_workload("SYN")
        assert 3 <= workload.num_phases <= 10
        assert 10 <= workload.timesteps <= 120

    def test_suite_generation(self):
        suite = SyntheticWorkloadGenerator(seed=5).suite(4, prefix="GEN")
        assert len(suite) == 4
        assert suite.names() == ["GEN00", "GEN01", "GEN02", "GEN03"]

    def test_suite_requires_positive_count(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(seed=5).suite(0)

    def test_generated_workloads_execute_on_the_machine(self, machine, configurations):
        gen = SyntheticWorkloadGenerator(seed=11)
        workload = gen.random_workload("SYN", num_phases=3, timesteps=5)
        for phase in workload.phases:
            for config in configurations:
                result = machine.execute(phase.work, config, apply_noise=False)
                assert result.time_seconds > 0
                assert result.ipc > 0

    def test_custom_ranges_respected(self):
        ranges = GeneratorRanges(working_set_mb=(1.0, 1.0001))
        gen = SyntheticWorkloadGenerator(seed=7, ranges=ranges)
        for _ in range(10):
            assert gen.random_work().working_set_mb == pytest.approx(1.0, rel=1e-3)
