"""Regression tests for the PredictorBundle prediction cache.

Covers the LRU mechanics (hit/miss counts, eviction at capacity), the
quantized keying (sub-quantization jitter collapses onto one entry), the
batched cache-aware path, the guarantee that quantization never changes the
selected configuration on the seed scenarios, and the NotFittedError
behaviour of unfitted models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import CrossValidationEnsemble
from repro.core import (
    ConfigurationSelector,
    LinearIPCModel,
    NotFittedError,
    PredictionCache,
    PredictionPolicy,
    PredictorBundle,
)
from repro.machine import CONFIG_4, Machine


def _sample_for(machine, predictor, phase):
    """Noise-free sampled IPC and event rates for one phase."""
    result = machine.execute(phase.work, CONFIG_4.placement, apply_noise=False)
    rates = {
        event: result.event_counts.get(event, 0.0) / result.cycles
        for event in predictor.event_set.events
    }
    return result.ipc, rates


@pytest.fixture()
def fresh_bundle(trained_bundle):
    """The session bundle with a private, empty cache per test."""
    bundle = PredictorBundle(
        full=trained_bundle.full,
        reduced=trained_bundle.reduced,
        cache=PredictionCache(capacity=64),
    )
    return bundle


class TestRefitInvalidation:
    """The cache must never serve predictions of a superseded model."""

    def _linear_bundle(self, trained_bundle, machine, suite):
        """A linear-model bundle sharing the session bundle's event set."""
        from repro.core import IPCPredictor

        event_set = trained_bundle.full.event_set
        rng = np.random.default_rng(3)
        features = rng.uniform(0.1, 2.0, size=(32, event_set.num_features))
        targets = features[:, 0] * 1.5 + 0.1
        models = {
            name: LinearIPCModel().fit(features, targets + i)
            for i, name in enumerate(("1", "2a", "2b", "3"))
        }
        predictor = IPCPredictor(
            event_set=event_set,
            sample_configuration="4",
            models=models,
            kind="linear",
        )
        return PredictorBundle(full=predictor, cache=PredictionCache(capacity=16))

    def test_refit_invalidates_cached_predictions(
        self, trained_bundle, machine, suite
    ):
        bundle = self._linear_bundle(trained_bundle, machine, suite)
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, bundle.full, phase)
        stale = bundle.predict_from_rates(ipc, rates)
        assert bundle.predict_from_rates(ipc, rates) == stale
        assert bundle.cache_info().hits == 1

        # Refit one underlying model with different targets: the cached
        # entry is now stale and must not be served.
        rng = np.random.default_rng(9)
        features = rng.uniform(0.1, 2.0, size=(32, bundle.full.event_set.num_features))
        bundle.full.models["2b"].fit(features, features[:, 1] * 40.0 + 5.0)
        fresh = bundle.predict_from_rates(ipc, rates)
        assert fresh["2b"] != pytest.approx(stale["2b"])
        assert fresh["2b"] == pytest.approx(
            bundle.full.predict_from_rates(*_quantized(bundle, ipc, rates))["2b"]
        )
        # The other models were not refit, so their predictions agree.
        assert fresh["1"] == pytest.approx(stale["1"])

    def test_refit_invalidates_the_batched_path_too(
        self, trained_bundle, machine, suite
    ):
        bundle = self._linear_bundle(trained_bundle, machine, suite)
        phases = suite.get("SP").phases[:3]
        samples = [_sample_for(machine, bundle.full, p) for p in phases]
        stale = bundle.predict_batch_from_rates(samples)
        rng = np.random.default_rng(5)
        features = rng.uniform(0.1, 2.0, size=(32, bundle.full.event_set.num_features))
        bundle.full.models["3"].fit(features, features[:, 2] * -7.0)
        fresh = bundle.predict_batch_from_rates(samples)
        for stale_row, fresh_row in zip(stale, fresh):
            assert fresh_row["3"] != pytest.approx(stale_row["3"])
            assert fresh_row["1"] == pytest.approx(stale_row["1"])

    def test_replacing_a_model_object_invalidates_the_cache(
        self, trained_bundle, machine, suite
    ):
        # A freshly trained replacement model can carry the same
        # fit_generation as its predecessor; the fingerprint must still
        # change (it tracks object identity, not just generations).
        bundle = self._linear_bundle(trained_bundle, machine, suite)
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, bundle.full, phase)
        stale = bundle.predict_from_rates(ipc, rates)
        rng = np.random.default_rng(21)
        features = rng.uniform(0.1, 2.0, size=(32, bundle.full.event_set.num_features))
        replacement = LinearIPCModel().fit(features, features[:, 3] * 11.0)
        assert replacement.fit_generation == bundle.full.models["2a"].fit_generation
        bundle.full.models["2a"] = replacement
        fresh = bundle.predict_from_rates(ipc, rates)
        assert fresh["2a"] != pytest.approx(stale["2a"])

    def test_fit_generations_are_tracked(self, trained_bundle):
        model = LinearIPCModel()
        assert model.fit_generation == 0
        features = np.random.default_rng(0).uniform(size=(8, 3))
        model.fit(features, features[:, 0])
        model.fit(features, features[:, 1])
        assert model.fit_generation == 2
        # Ensemble-backed models expose the ensemble's generation; the
        # fingerprint also carries each model's object identity.
        fingerprint = trained_bundle.full.fit_fingerprint()
        assert all(generation >= 1 for _, _, generation in fingerprint)

    def test_unrelated_lookups_keep_the_cache_warm(
        self, trained_bundle, machine, suite
    ):
        # No refit: the fingerprint check must not clear the cache between
        # calls (the hit counter keeps growing).
        bundle = self._linear_bundle(trained_bundle, machine, suite)
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, bundle.full, phase)
        bundle.predict_from_rates(ipc, rates)
        for _ in range(3):
            bundle.predict_from_rates(ipc, rates)
        assert bundle.cache_info().hits == 3
        assert bundle.cache_info().size == 1


def _quantized(bundle, ipc, rates):
    """The quantized (ipc, rates) pair the cache keys and evaluates with."""
    events = bundle.full.event_set.events
    key = bundle.cache.key(bundle.full.event_set.name, ipc, rates, events)
    _, q_ipc, q_rates = key
    return q_ipc, dict(zip(events, q_rates))


class TestCacheHitsAndMisses:
    def test_first_lookup_misses_second_hits(self, machine, suite, fresh_bundle):
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, fresh_bundle.full, phase)
        first = fresh_bundle.predict_from_rates(ipc, rates)
        info = fresh_bundle.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 1, 1)
        second = fresh_bundle.predict_from_rates(ipc, rates)
        info = fresh_bundle.cache_info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert first == second
        assert info.hit_rate == pytest.approx(0.5)

    def test_jitter_below_quantization_step_still_hits(
        self, machine, suite, fresh_bundle
    ):
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, fresh_bundle.full, phase)
        fresh_bundle.predict_from_rates(ipc, rates)
        # Perturb every feature by ~1e-9 relative — far below the 6
        # significant digits kept by the cache key.
        jittered = {e: v * (1.0 + 1e-9) for e, v in rates.items()}
        fresh_bundle.predict_from_rates(ipc * (1.0 + 1e-9), jittered)
        info = fresh_bundle.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_distinct_phases_occupy_distinct_entries(
        self, machine, suite, fresh_bundle
    ):
        for phase in suite.get("SP").phases[:4]:
            ipc, rates = _sample_for(machine, fresh_bundle.full, phase)
            fresh_bundle.predict_from_rates(ipc, rates)
        info = fresh_bundle.cache_info()
        assert info.misses == 4
        assert info.size == 4

    def test_event_sets_do_not_collide(self, machine, suite, fresh_bundle):
        phase = suite.get("SP").phases[0]
        ipc, rates = _sample_for(machine, fresh_bundle.full, phase)
        fresh_bundle.predict_from_rates(ipc, rates, event_set="full")
        fresh_bundle.predict_from_rates(ipc, rates, event_set="reduced")
        info = fresh_bundle.cache_info()
        assert (info.misses, info.size) == (2, 2)


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache = PredictionCache(capacity=3)
        events = ("E1",)
        keys = [
            cache.key("full", float(i), {"E1": 0.01 * (i + 1)}, events)
            for i in range(4)
        ]
        for key in keys[:3]:
            cache.put(key, {"1": 1.0})
        assert len(cache) == 3 and cache.evictions == 0
        cache.put(keys[3], {"1": 1.0})
        assert len(cache) == 3
        assert cache.evictions == 1
        assert keys[0] not in cache  # oldest entry went first
        assert keys[3] in cache

    def test_recently_used_entry_survives_eviction(self):
        cache = PredictionCache(capacity=2)
        events = ("E1",)
        a = cache.key("full", 1.0, {"E1": 0.01}, events)
        b = cache.key("full", 2.0, {"E1": 0.02}, events)
        c = cache.key("full", 3.0, {"E1": 0.03}, events)
        cache.put(a, {"1": 1.0})
        cache.put(b, {"1": 2.0})
        assert cache.get(a) is not None  # refresh a: b becomes LRU
        cache.put(c, {"1": 3.0})
        assert a in cache and c in cache and b not in cache

    def test_clear_resets_counters(self):
        cache = PredictionCache(capacity=2)
        key = cache.key("full", 1.0, {"E1": 0.01}, ("E1",))
        cache.put(key, {"1": 1.0})
        cache.get(key)
        cache.get(cache.key("full", 9.0, {"E1": 0.5}, ("E1",)))
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.evictions, info.size) == (0, 0, 0, 0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PredictionCache(capacity=0)
        with pytest.raises(ValueError):
            PredictionCache(significant_digits=0)


class TestBatchedCachePath:
    def test_batched_path_matches_single_path_and_fills_cache(
        self, machine, suite, fresh_bundle
    ):
        predictor = fresh_bundle.full
        samples = [
            _sample_for(machine, predictor, phase)
            for phase in suite.get("SP").phases[:5]
        ]
        batched = fresh_bundle.predict_batch_from_rates(samples)
        assert fresh_bundle.cache_info().size == 5
        for (ipc, rates), predictions in zip(samples, batched):
            single = fresh_bundle.predict_from_rates(ipc, rates)  # now cached
            assert set(predictions) == set(predictor.target_configurations)
            for config in predictions:
                assert predictions[config] == pytest.approx(
                    single[config], abs=1e-12
                )
        info = fresh_bundle.cache_info()
        assert info.hits == 5  # the follow-up single calls all hit

    def test_duplicate_rows_in_one_batch_share_one_evaluation(
        self, machine, suite, fresh_bundle
    ):
        ipc, rates = _sample_for(
            machine, fresh_bundle.full, suite.get("SP").phases[0]
        )
        batched = fresh_bundle.predict_batch_from_rates([(ipc, rates)] * 3)
        assert batched[0] == batched[1] == batched[2]
        assert fresh_bundle.cache_info().size == 1


class TestQuantizationNeverChangesSelection:
    def test_selected_configuration_identical_on_seed_scenarios(
        self, machine, suite, fresh_bundle
    ):
        """Across every phase of the seed suite, ranking raw predictions and
        ranking quantized/cached predictions selects the same configuration."""
        selector = ConfigurationSelector()
        predictor = fresh_bundle.full
        checked = 0
        for workload in suite:
            for phase in workload.phases:
                ipc, rates = _sample_for(machine, predictor, phase)
                raw = predictor.predict_from_rates(ipc, rates)
                cached = fresh_bundle.predict_from_rates(ipc, rates)
                raw_best = selector.rank(
                    raw, measured_sample=(CONFIG_4.name, ipc)
                ).best
                cached_best = selector.rank(
                    cached, measured_sample=(CONFIG_4.name, ipc)
                ).best
                assert raw_best == cached_best, (
                    f"{workload.name}:{phase.name} selects {raw_best} raw "
                    f"but {cached_best} through the quantized cache"
                )
                checked += 1
        assert checked > 20  # the seed suite really was swept

    def test_cached_policy_reaches_same_decisions(self, machine, trained_bundle):
        """End-to-end: a PredictionPolicy with use_cache=True locks every
        phase to the same configuration as the uncached policy."""
        from repro.core import ACTOR
        from repro.openmp import OpenMPRuntime
        from repro.workloads import nas_suite

        suite = nas_suite(machine=machine, variability=0.0)
        workload = suite.get("SP")
        bundle = PredictorBundle(
            full=trained_bundle.full,
            reduced=trained_bundle.reduced,
            cache=PredictionCache(),
        )
        decisions = {}
        for use_cache in (False, True):
            runtime = OpenMPRuntime(Machine(noise_sigma=0.0), seed=77)
            policy = PredictionPolicy(bundle, use_cache=use_cache)
            ACTOR(runtime).run_with_policy(workload, policy)
            decisions[use_cache] = policy.decisions()
        assert decisions[False] == decisions[True]
        assert bundle.cache_info().misses > 0


class TestNotFittedErrors:
    def test_linear_model_raises_clear_not_fitted_error(self):
        model = LinearIPCModel()
        with pytest.raises(NotFittedError, match="not fitted.*fit\\(features"):
            model.predict_one(np.zeros(3))
        with pytest.raises(NotFittedError, match="predict_batch"):
            model.predict_batch(np.zeros((2, 3)))

    def test_ensemble_raises_clear_not_fitted_error(self):
        ensemble = CrossValidationEnsemble(folds=3)
        with pytest.raises(NotFittedError, match="not fitted"):
            ensemble.predict(np.zeros(3))
        with pytest.raises(NotFittedError, match="not fitted"):
            ensemble.predict_batch(np.zeros((2, 3)))

    def test_not_fitted_error_is_a_runtime_error(self):
        # Backwards compatibility: legacy callers catching RuntimeError
        # continue to work.
        assert issubclass(NotFittedError, RuntimeError)
        with pytest.raises(RuntimeError):
            LinearIPCModel().predict_one(np.zeros(3))
