"""Tests for backpropagation training, early stopping and CV ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    BackpropTrainer,
    CrossValidationEnsemble,
    NeuralNetwork,
    TrainingConfig,
    mean_squared_error,
)


def _toy_regression(n: int = 120, seed: int = 0):
    """A smooth nonlinear 2-D regression problem."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, size=(n, 2))
    y = np.sin(2.0 * x[:, 0]) + 0.5 * x[:, 1] ** 2
    return x, y.reshape(-1, 1)


class TestTrainingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"momentum": 1.5},
            {"max_epochs": 0},
            {"batch_size": -1},
            {"patience": 0},
            {"validation_fraction": 0.95},
            {"l2": -1.0},
        ],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestBackpropTrainer:
    def test_training_reduces_error(self):
        x, y = _toy_regression()
        net = NeuralNetwork((2, 12, 1), seed=1)
        before = mean_squared_error(y, net.predict(x))
        trainer = BackpropTrainer(
            TrainingConfig(max_epochs=200, patience=50, learning_rate=0.1), seed=1
        )
        history = trainer.train(net, x, y)
        after = mean_squared_error(y, net.predict(x))
        assert after < before * 0.5
        assert history.epochs_run > 0
        assert history.best_epoch >= 0

    def test_early_stopping_triggers_on_noise_only_target(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 3))
        y = rng.normal(size=(60, 1))  # pure noise: no generalizable signal
        net = NeuralNetwork((3, 16, 1), seed=2)
        trainer = BackpropTrainer(
            TrainingConfig(max_epochs=400, patience=10, learning_rate=0.2), seed=2
        )
        history = trainer.train(net, x, y)
        assert history.stopped_early
        assert history.epochs_run < 400

    def test_explicit_validation_set_used(self):
        x, y = _toy_regression(80)
        val_x, val_y = _toy_regression(30, seed=9)
        net = NeuralNetwork((2, 8, 1), seed=4)
        history = BackpropTrainer(
            TrainingConfig(max_epochs=50, patience=50), seed=4
        ).train(net, x, y, validation_inputs=val_x, validation_targets=val_y)
        assert len(history.validation_errors) == history.epochs_run

    def test_best_parameters_restored(self):
        x, y = _toy_regression(60)
        net = NeuralNetwork((2, 8, 1), seed=5)
        trainer = BackpropTrainer(TrainingConfig(max_epochs=80, patience=10), seed=5)
        history = trainer.train(net, x, y)
        # The restored network's validation error equals the best recorded one.
        assert min(history.validation_errors) == pytest.approx(
            history.best_validation_error, rel=1e-9
        )

    def test_requires_at_least_two_samples(self):
        net = NeuralNetwork((2, 4, 1))
        with pytest.raises(ValueError):
            BackpropTrainer().train(net, np.zeros((1, 2)), np.zeros((1, 1)))

    def test_mismatched_sample_counts_rejected(self):
        net = NeuralNetwork((2, 4, 1))
        with pytest.raises(ValueError):
            BackpropTrainer().train(net, np.zeros((4, 2)), np.zeros((3, 1)))

    def test_full_batch_mode(self):
        x, y = _toy_regression(40)
        net = NeuralNetwork((2, 6, 1), seed=6)
        history = BackpropTrainer(
            TrainingConfig(max_epochs=30, patience=30, batch_size=0), seed=6
        ).train(net, x, y)
        assert history.epochs_run == 30


class TestCrossValidationEnsemble:
    def test_fit_produces_one_member_per_fold(self):
        x, y = _toy_regression(100)
        ensemble = CrossValidationEnsemble(
            hidden_layers=(8,),
            folds=5,
            config=TrainingConfig(max_epochs=60, patience=10),
            seed=0,
        )
        results = ensemble.fit(x, y)
        assert len(results) == 5
        assert len(ensemble.members) == 5
        assert ensemble.trained
        assert ensemble.generalization_estimate() >= 0.0

    def test_ensemble_learns_the_function(self):
        x, y = _toy_regression(150)
        ensemble = CrossValidationEnsemble(
            hidden_layers=(12,),
            folds=5,
            config=TrainingConfig(max_epochs=150, patience=25, learning_rate=0.1),
            seed=1,
        )
        ensemble.fit(x, y)
        predictions = ensemble.predict(x)
        assert mean_squared_error(y, predictions) < 0.05

    def test_prediction_shapes(self):
        x, y = _toy_regression(60)
        ensemble = CrossValidationEnsemble(
            folds=3, config=TrainingConfig(max_epochs=20, patience=5), seed=2
        )
        ensemble.fit(x, y)
        assert np.isscalar(ensemble.predict(x[0]))
        assert ensemble.predict(x[:7]).shape == (7,)
        assert ensemble.predict_std(x[:7]).shape == (7,)

    def test_predict_before_fit_raises(self):
        ensemble = CrossValidationEnsemble(folds=3)
        with pytest.raises(RuntimeError):
            ensemble.predict(np.zeros(3))
        with pytest.raises(RuntimeError):
            ensemble.generalization_estimate()

    def test_requires_enough_samples(self):
        ensemble = CrossValidationEnsemble(folds=10)
        with pytest.raises(ValueError):
            ensemble.fit(np.zeros((5, 2)), np.zeros(5))

    def test_requires_at_least_three_folds(self):
        with pytest.raises(ValueError):
            CrossValidationEnsemble(folds=2)

    def test_mismatched_targets_rejected(self):
        ensemble = CrossValidationEnsemble(folds=3)
        with pytest.raises(ValueError):
            ensemble.fit(np.zeros((10, 2)), np.zeros(9))

    def test_deterministic_given_seed(self):
        x, y = _toy_regression(60)
        config = TrainingConfig(max_epochs=25, patience=5)
        a = CrossValidationEnsemble(folds=3, config=config, seed=11)
        b = CrossValidationEnsemble(folds=3, config=config, seed=11)
        a.fit(x, y)
        b.fit(x, y)
        assert np.allclose(a.predict(x[:5]), b.predict(x[:5]))
