"""Unit tests for the full-system power model."""

from __future__ import annotations

import pytest

from repro.machine import PowerModel, PowerParameters, quad_core_xeon


@pytest.fixture(scope="module")
def power():
    return PowerModel(quad_core_xeon())


class TestIdleAndValidation:
    def test_idle_power_counts_all_cores(self, power):
        params = power.parameters
        expected = params.platform_idle_watts + 4 * params.core_idle_watts
        assert power.idle_power_watts() == pytest.approx(expected)

    def test_mismatched_arguments_rejected(self, power):
        with pytest.raises(ValueError):
            power.evaluate([0, 1], [1.0], [0.1], 0.5)

    def test_invalid_bus_utilization_rejected(self, power):
        with pytest.raises(ValueError):
            power.evaluate([0], [1.0], [0.1], 1.5)

    def test_negative_time_rejected(self, power):
        with pytest.raises(ValueError):
            power.energy_joules(100.0, -1.0)

    def test_energy_is_power_times_time(self, power):
        assert power.energy_joules(120.0, 10.0) == pytest.approx(1200.0)


class TestActivityFactor:
    def test_bounded_between_floor_and_one(self, power):
        assert 0.0 < power.core_activity_factor(0.0, 1.0) < 0.2
        assert power.core_activity_factor(4.0, 0.0) == pytest.approx(1.0)

    def test_higher_ipc_means_more_activity(self, power):
        low = power.core_activity_factor(0.2, 0.5)
        high = power.core_activity_factor(1.5, 0.5)
        assert high > low

    def test_stalling_reduces_activity(self, power):
        busy = power.core_activity_factor(1.0, 0.1)
        stalled = power.core_activity_factor(1.0, 0.9)
        assert stalled < busy


class TestEvaluate:
    def test_more_active_cores_draw_more_power(self, power):
        one = power.evaluate([0], [1.2], [0.3], 0.3).total_watts
        four = power.evaluate([0, 1, 2, 3], [1.2] * 4, [0.3] * 4, 0.5).total_watts
        assert four > one

    def test_idle_cores_billed_at_idle_power(self, power):
        breakdown = power.evaluate([0], [1.0], [0.2], 0.2)
        # Exactly one per-core component is reported for the busy core.
        assert list(breakdown.components) == ["core0"]

    def test_high_ipc_threads_draw_more_than_stalled_threads(self, power):
        busy = power.evaluate([0, 1, 2, 3], [1.6] * 4, [0.2] * 4, 0.4).total_watts
        stalled = power.evaluate([0, 1, 2, 3], [0.1] * 4, [0.95] * 4, 0.4).total_watts
        assert busy > stalled + 10.0

    def test_bus_utilization_adds_memory_power(self, power):
        low = power.evaluate([0], [1.0], [0.3], 0.0).total_watts
        high = power.evaluate([0], [1.0], [0.3], 1.0).total_watts
        assert high - low == pytest.approx(power.parameters.memory_dynamic_watts)

    def test_shared_cache_counted_once(self, power):
        tight = power.evaluate([0, 1], [1.0, 1.0], [0.3, 0.3], 0.3)
        loose = power.evaluate([0, 2], [1.0, 1.0], [0.3, 0.3], 0.3)
        assert loose.caches_watts == pytest.approx(2 * power.parameters.l2_active_watts)
        assert tight.caches_watts == pytest.approx(power.parameters.l2_active_watts)

    def test_total_is_sum_of_breakdown(self, power):
        b = power.evaluate([0, 2], [1.0, 0.5], [0.3, 0.6], 0.4)
        assert b.total_watts == pytest.approx(
            b.platform_watts + b.cores_watts + b.caches_watts + b.uncore_watts + b.memory_watts
        )

    def test_realistic_power_range(self, power):
        total = power.evaluate([0, 1, 2, 3], [1.0] * 4, [0.4] * 4, 0.6).total_watts
        assert 120.0 < total < 180.0

    def test_custom_parameters_respected(self):
        params = PowerParameters(platform_idle_watts=50.0, core_idle_watts=0.0)
        model = PowerModel(quad_core_xeon(), params)
        assert model.idle_power_watts() == pytest.approx(50.0)
