"""Property-based tests (hypothesis) for core invariants.

These tests exercise the machine model, the ANN scalers/networks and the
selection logic over wide input ranges, checking invariants that must hold
for *any* admissible input rather than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import MinMaxScaler, NeuralNetwork, StandardScaler
from repro.core import ConfigurationSelector, rank_of_selection, sampling_budget
from repro.machine import (
    CONFIG_1,
    CONFIG_2A,
    CONFIG_2B,
    CONFIG_4,
    CacheModel,
    Machine,
    MemoryModel,
    WorkRequest,
    default_pstate_table,
    quad_core_xeon,
)

_PSTATE_TABLE = default_pstate_table()

_MACHINE = Machine(noise_sigma=0.0)
_CACHE = CacheModel(quad_core_xeon())
_MEMORY = MemoryModel(quad_core_xeon())

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def work_requests(draw) -> WorkRequest:
    """Random but physically admissible phase characterizations."""
    mem = draw(st.floats(0.1, 0.5))
    flop = draw(st.floats(0.0, 0.9 - mem))
    return WorkRequest(
        instructions=draw(st.floats(1e6, 5e9)),
        mem_fraction=mem,
        flop_fraction=flop,
        branch_fraction=draw(st.floats(0.0, 0.2)),
        l1_miss_rate=draw(st.floats(0.0, 0.3)),
        l2_miss_rate_solo=draw(st.floats(0.0, 0.9)),
        working_set_mb=draw(st.floats(0.1, 32.0)),
        locality_exponent=draw(st.floats(0.0, 4.0)),
        sharing_fraction=draw(st.floats(0.0, 1.0)),
        bandwidth_sensitivity=draw(st.floats(0.3, 1.5)),
        serial_fraction=draw(st.floats(0.0, 0.5)),
        load_imbalance=draw(st.floats(1.0, 1.3)),
        barriers=draw(st.integers(0, 30)),
        sync_cycles_per_barrier=draw(st.floats(0.0, 10_000.0)),
        prefetch_friendliness=draw(st.floats(0.0, 0.95)),
        base_cpi=draw(st.floats(0.3, 1.5)),
    )


class TestMachineProperties:
    @given(work=work_requests())
    @_SETTINGS
    def test_execution_results_are_physical(self, work):
        result = _MACHINE.execute(work, CONFIG_4, apply_noise=False)
        assert result.time_seconds > 0
        assert result.cycles > 0
        assert 0 < result.ipc < 16.0
        assert 100.0 < result.power_watts < 200.0
        assert result.energy_joules > 0
        assert all(np.isfinite(v) for v in result.event_counts.values())
        assert all(v >= 0 for v in result.event_counts.values())

    @given(work=work_requests())
    @_SETTINGS
    def test_single_thread_never_slower_than_serialized_four_thread_work(self, work):
        """Total machine work (thread-seconds) never shrinks with threads."""
        one = _MACHINE.execute(work, CONFIG_1, apply_noise=False)
        four = _MACHINE.execute(work, CONFIG_4, apply_noise=False)
        # Four threads can be at most ~4x faster (plus a small tolerance for
        # the constructive-sharing relief in the cache model).
        assert four.time_seconds > one.time_seconds / 4.2

    @given(work=work_requests())
    @_SETTINGS
    def test_tight_coupling_never_beats_loose_coupling_materially(self, work):
        """Sharing an L2 can only hurt or be neutral for mostly-private data;
        with strong sharing it may help, but never by more than the shared
        fraction could explain."""
        tight = _MACHINE.execute(work, CONFIG_2A, apply_noise=False).time_seconds
        loose = _MACHINE.execute(work, CONFIG_2B, apply_noise=False).time_seconds
        if work.sharing_fraction < 0.05:
            assert tight >= loose * 0.98

    @given(work=work_requests())
    @_SETTINGS
    def test_power_increases_with_active_cores(self, work):
        p1 = _MACHINE.execute(work, CONFIG_1, apply_noise=False).power_watts
        p4 = _MACHINE.execute(work, CONFIG_4, apply_noise=False).power_watts
        assert p4 > p1

    @given(work=work_requests(), occupants=st.integers(1, 4))
    @_SETTINGS
    def test_cache_miss_ratio_bounded(self, work, occupants):
        ratio = _CACHE.miss_ratio(work, capacity_mb=4.0, occupants=occupants)
        assert 0.0 < ratio <= 1.0

    @given(work=work_requests())
    @_SETTINGS
    def test_cache_pressure_monotone_in_occupants(self, work):
        """With mostly-private data, more occupants never reduce misses
        (beyond the small constructive-sharing relief proportional to the
        shared fraction)."""
        ratios = [_CACHE.miss_ratio(work, 4.0, n) for n in (1, 2, 3, 4)]
        if work.sharing_fraction < 0.05:
            tolerance = 1.0 + 0.15 * work.sharing_fraction * 3 + 1e-9
            assert all(a <= b * tolerance for a, b in zip(ratios, ratios[1:]))

    @given(util=st.floats(0.0, 0.999), requestors=st.integers(1, 4))
    @_SETTINGS
    def test_latency_stretch_bounded_and_monotone_in_requestors(self, util, requestors):
        stretch = _MEMORY.latency_stretch(util, requestors)
        assert 1.0 <= stretch <= _MEMORY.max_stretch * (1 + _MEMORY.row_conflict_penalty * 3)
        assert stretch >= _MEMORY.latency_stretch(util, 1) - 1e-12

    @given(demand=st.floats(0.0, 50.0), requestors=st.integers(1, 4))
    @_SETTINGS
    def test_bus_state_invariants(self, demand, requestors):
        state = _MEMORY.resolve(demand, active_requestors=requestors)
        assert 0.0 <= state.utilization <= 1.0
        assert state.latency_stretch >= 1.0
        assert state.transactions_per_cycle >= 0.0

    @given(
        work=work_requests(),
        indices=st.lists(
            st.integers(0, len(_PSTATE_TABLE) - 1), min_size=4, max_size=4
        ),
    )
    @_SETTINGS
    def test_heterogeneous_executions_are_physical(self, work, indices):
        """Any per-core P-state vector yields finite, physical results."""
        vector = tuple(_PSTATE_TABLE.states[i] for i in indices)
        result = _MACHINE.execute(work, CONFIG_4, apply_noise=False, pstate=vector)
        assert result.time_seconds > 0
        assert result.cycles > 0
        assert 0 < result.ipc < 16.0
        assert 100.0 < result.power_watts < 200.0
        assert all(np.isfinite(v) for v in result.event_counts.values())
        assert all(v >= 0 for v in result.event_counts.values())
        # The reported clock is the master (thread-0) core's.
        assert result.frequency_ghz == pytest.approx(vector[0].frequency_ghz)
        # Deterministic: replaying the vector reproduces the cell exactly.
        replay = _MACHINE.execute(work, CONFIG_4, apply_noise=False, pstate=vector)
        assert replay.time_seconds == result.time_seconds
        assert replay.power_watts == result.power_watts

    @given(
        work=work_requests(),
        index=st.integers(0, len(_PSTATE_TABLE) - 1),
    )
    @_SETTINGS
    def test_degenerate_vector_equals_homogeneous_execution(self, work, index):
        """All-equal vectors collapse onto the homogeneous path bit for bit."""
        state = _PSTATE_TABLE.states[index]
        uniform = _MACHINE.execute(
            work, CONFIG_4, apply_noise=False, pstate=(state,) * 4
        )
        homogeneous = _MACHINE.execute(work, CONFIG_4, apply_noise=False, pstate=state)
        assert uniform.time_seconds == homogeneous.time_seconds
        assert uniform.energy_joules == homogeneous.energy_joules


class TestAnnProperties:
    @given(
        data=st.lists(
            st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=3),
            min_size=2,
            max_size=40,
        )
    )
    @_SETTINGS
    def test_standard_scaler_round_trip(self, data):
        array = np.array(data, dtype=float)
        scaler = StandardScaler().fit(array)
        recovered = scaler.inverse_transform(scaler.transform(array))
        assert np.allclose(recovered, array, atol=1e-6, rtol=1e-6)

    @given(
        data=st.lists(
            st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=2),
            min_size=2,
            max_size=40,
        )
    )
    @_SETTINGS
    def test_minmax_scaler_bounds(self, data):
        array = np.array(data, dtype=float)
        scaler = MinMaxScaler(margin=0.05).fit(array)
        scaled = scaler.transform(array)
        assert scaled.min() >= 0.0 - 1e-9
        assert scaled.max() <= 1.0 + 1e-9

    @given(
        inputs=st.lists(
            st.lists(st.floats(-5, 5), min_size=4, max_size=4),
            min_size=1,
            max_size=16,
        ),
        seed=st.integers(0, 1000),
    )
    @_SETTINGS
    def test_network_outputs_finite(self, inputs, seed):
        net = NeuralNetwork((4, 6, 2), seed=seed)
        outputs = net.predict(np.array(inputs, dtype=float))
        assert np.isfinite(outputs).all()

    @given(
        values=st.dictionaries(
            st.sampled_from(["1", "2a", "2b", "3", "4"]),
            st.floats(0.01, 10.0),
            min_size=2,
            max_size=5,
        )
    )
    @_SETTINGS
    def test_selector_picks_the_maximum(self, values):
        selector = ConfigurationSelector()
        best = selector.select(values)
        maximum = max(values.values())
        assert values[best] == pytest.approx(maximum)
        # When the maximum is unique the selected configuration is also the
        # rank-1 configuration; on exact ties any maximal entry is acceptable.
        if sum(1 for v in values.values() if v == maximum) == 1:
            assert rank_of_selection(best, values) == 1


#: Name pool for ranking properties: the paper's configurations plus DVFS
#: cross-product labels (unknown to the default tie-breaker on purpose).
_RANK_NAMES = ("1", "2a", "2b", "3", "4", "2b@2GHz", "2b@1.6GHz", "4@1.6GHz")


@st.composite
def prediction_maps(draw, min_size=2):
    """Random per-configuration prediction dictionaries."""
    names = draw(
        st.lists(
            st.sampled_from(_RANK_NAMES),
            min_size=min_size,
            max_size=len(_RANK_NAMES),
            unique=True,
        )
    )
    return {
        name: draw(st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False))
        for name in names
    }


class TestRankingProperties:
    """Satellite invariants of ConfigurationSelector / rank_of_selection."""

    @given(values=prediction_maps())
    @_SETTINGS
    def test_ranking_is_a_permutation_of_the_candidates(self, values):
        ranked = ConfigurationSelector().rank(values)
        assert sorted(ranked.ranking) == sorted(values)
        assert len(set(ranked.ranking)) == len(values)

    @given(values=prediction_maps())
    @_SETTINGS
    def test_best_is_the_argmax(self, values):
        ranked = ConfigurationSelector().rank(values)
        maximum = max(values.values())
        assert values[ranked.best] == pytest.approx(maximum)
        # The ranking is weakly decreasing in predicted IPC.
        ipcs = [values[name] for name in ranked.ranking]
        assert all(a >= b for a, b in zip(ipcs, ipcs[1:]))

    @given(values=prediction_maps(), seed=st.integers(0, 2**16))
    @_SETTINGS
    def test_tie_breaking_is_deterministic(self, values, seed):
        # The same predictions presented in any insertion order (and with
        # arbitrary exact ties injected) produce the identical ranking.
        selector = ConfigurationSelector()
        rng = np.random.default_rng(seed)
        names = list(values)
        tied_value = float(min(values.values()))
        tied = dict(values)
        for name in names[: len(names) // 2]:
            tied[name] = tied_value
        shuffled = {n: tied[n] for n in rng.permutation(list(tied))}
        assert selector.rank(tied).ranking == selector.rank(shuffled).ranking
        assert selector.rank(tied).best == selector.rank(shuffled).best

    @given(
        values=prediction_maps(),
        scale=st.floats(0.1, 50.0),
        shift=st.floats(0.0, 100.0),
    )
    @_SETTINGS
    def test_rank_invariant_under_monotone_transforms(self, values, scale, shift):
        # Any strictly increasing transform of the predictions leaves the
        # ranking unchanged (the ipc objective is purely ordinal).  Under
        # floating point a mathematically strict transform can round two
        # near-equal predictions onto one value, creating a *new* tie whose
        # tie-break legitimately reorders them — so the invariance claim
        # only applies when the transform kept the distinct values distinct.
        selector = ConfigurationSelector()
        base = selector.rank(values).ranking
        distinct = len(set(values.values()))
        affine = {n: scale * v + shift for n, v in values.items()}
        exponential = {n: float(np.expm1(v / 10.0)) for n, v in values.items()}
        for transformed in (affine, exponential):
            if len(set(transformed.values())) == distinct:
                assert selector.rank(transformed).ranking == base

    @given(values=prediction_maps())
    @_SETTINGS
    def test_rank_of_selection_bounds_and_argmax(self, values):
        ranked = ConfigurationSelector().rank(values)
        for name in values:
            rank = rank_of_selection(name, values)
            assert 1 <= rank <= len(values)
        if len({round(v, 12) for v in values.values()}) == len(values):
            assert rank_of_selection(ranked.best, values) == 1
            worst = min(values, key=values.get)
            assert rank_of_selection(worst, values) == len(values)

    @given(
        values=prediction_maps(),
        scale=st.floats(0.1, 50.0),
    )
    @_SETTINGS
    def test_rank_of_selection_invariant_under_monotone_transform(
        self, values, scale
    ):
        selected = next(iter(values))
        transformed = {n: scale * v for n, v in values.items()}
        assert rank_of_selection(selected, values) == rank_of_selection(
            selected, transformed
        )
        # Flipping the metric direction mirrors the rank.
        negated = {n: -v for n, v in values.items()}
        assert rank_of_selection(
            selected, negated, higher_is_better=False
        ) == rank_of_selection(selected, values, higher_is_better=True)


class TestBudgetProperties:
    @given(timesteps=st.integers(1, 10_000), fraction=st.floats(0.01, 1.0))
    @_SETTINGS
    def test_sampling_budget_bounds(self, timesteps, fraction):
        budget = sampling_budget(timesteps, fraction)
        assert 1 <= budget <= max(1, timesteps)
        assert budget <= timesteps * fraction + 1
