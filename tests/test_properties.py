"""Property-based tests (hypothesis) for core invariants.

These tests exercise the machine model, the ANN scalers/networks and the
selection logic over wide input ranges, checking invariants that must hold
for *any* admissible input rather than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import MinMaxScaler, NeuralNetwork, StandardScaler
from repro.core import ConfigurationSelector, rank_of_selection, sampling_budget
from repro.machine import (
    CONFIG_1,
    CONFIG_2A,
    CONFIG_2B,
    CONFIG_4,
    CacheModel,
    Machine,
    MemoryModel,
    WorkRequest,
    quad_core_xeon,
)

_MACHINE = Machine(noise_sigma=0.0)
_CACHE = CacheModel(quad_core_xeon())
_MEMORY = MemoryModel(quad_core_xeon())

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def work_requests(draw) -> WorkRequest:
    """Random but physically admissible phase characterizations."""
    mem = draw(st.floats(0.1, 0.5))
    flop = draw(st.floats(0.0, 0.9 - mem))
    return WorkRequest(
        instructions=draw(st.floats(1e6, 5e9)),
        mem_fraction=mem,
        flop_fraction=flop,
        branch_fraction=draw(st.floats(0.0, 0.2)),
        l1_miss_rate=draw(st.floats(0.0, 0.3)),
        l2_miss_rate_solo=draw(st.floats(0.0, 0.9)),
        working_set_mb=draw(st.floats(0.1, 32.0)),
        locality_exponent=draw(st.floats(0.0, 4.0)),
        sharing_fraction=draw(st.floats(0.0, 1.0)),
        bandwidth_sensitivity=draw(st.floats(0.3, 1.5)),
        serial_fraction=draw(st.floats(0.0, 0.5)),
        load_imbalance=draw(st.floats(1.0, 1.3)),
        barriers=draw(st.integers(0, 30)),
        sync_cycles_per_barrier=draw(st.floats(0.0, 10_000.0)),
        prefetch_friendliness=draw(st.floats(0.0, 0.95)),
        base_cpi=draw(st.floats(0.3, 1.5)),
    )


class TestMachineProperties:
    @given(work=work_requests())
    @_SETTINGS
    def test_execution_results_are_physical(self, work):
        result = _MACHINE.execute(work, CONFIG_4, apply_noise=False)
        assert result.time_seconds > 0
        assert result.cycles > 0
        assert 0 < result.ipc < 16.0
        assert 100.0 < result.power_watts < 200.0
        assert result.energy_joules > 0
        assert all(np.isfinite(v) for v in result.event_counts.values())
        assert all(v >= 0 for v in result.event_counts.values())

    @given(work=work_requests())
    @_SETTINGS
    def test_single_thread_never_slower_than_serialized_four_thread_work(self, work):
        """Total machine work (thread-seconds) never shrinks with threads."""
        one = _MACHINE.execute(work, CONFIG_1, apply_noise=False)
        four = _MACHINE.execute(work, CONFIG_4, apply_noise=False)
        # Four threads can be at most ~4x faster (plus a small tolerance for
        # the constructive-sharing relief in the cache model).
        assert four.time_seconds > one.time_seconds / 4.2

    @given(work=work_requests())
    @_SETTINGS
    def test_tight_coupling_never_beats_loose_coupling_materially(self, work):
        """Sharing an L2 can only hurt or be neutral for mostly-private data;
        with strong sharing it may help, but never by more than the shared
        fraction could explain."""
        tight = _MACHINE.execute(work, CONFIG_2A, apply_noise=False).time_seconds
        loose = _MACHINE.execute(work, CONFIG_2B, apply_noise=False).time_seconds
        if work.sharing_fraction < 0.05:
            assert tight >= loose * 0.98

    @given(work=work_requests())
    @_SETTINGS
    def test_power_increases_with_active_cores(self, work):
        p1 = _MACHINE.execute(work, CONFIG_1, apply_noise=False).power_watts
        p4 = _MACHINE.execute(work, CONFIG_4, apply_noise=False).power_watts
        assert p4 > p1

    @given(work=work_requests(), occupants=st.integers(1, 4))
    @_SETTINGS
    def test_cache_miss_ratio_bounded(self, work, occupants):
        ratio = _CACHE.miss_ratio(work, capacity_mb=4.0, occupants=occupants)
        assert 0.0 < ratio <= 1.0

    @given(work=work_requests())
    @_SETTINGS
    def test_cache_pressure_monotone_in_occupants(self, work):
        """With mostly-private data, more occupants never reduce misses
        (beyond the small constructive-sharing relief proportional to the
        shared fraction)."""
        ratios = [_CACHE.miss_ratio(work, 4.0, n) for n in (1, 2, 3, 4)]
        if work.sharing_fraction < 0.05:
            tolerance = 1.0 + 0.15 * work.sharing_fraction * 3 + 1e-9
            assert all(a <= b * tolerance for a, b in zip(ratios, ratios[1:]))

    @given(util=st.floats(0.0, 0.999), requestors=st.integers(1, 4))
    @_SETTINGS
    def test_latency_stretch_bounded_and_monotone_in_requestors(self, util, requestors):
        stretch = _MEMORY.latency_stretch(util, requestors)
        assert 1.0 <= stretch <= _MEMORY.max_stretch * (1 + _MEMORY.row_conflict_penalty * 3)
        assert stretch >= _MEMORY.latency_stretch(util, 1) - 1e-12

    @given(demand=st.floats(0.0, 50.0), requestors=st.integers(1, 4))
    @_SETTINGS
    def test_bus_state_invariants(self, demand, requestors):
        state = _MEMORY.resolve(demand, active_requestors=requestors)
        assert 0.0 <= state.utilization <= 1.0
        assert state.latency_stretch >= 1.0
        assert state.transactions_per_cycle >= 0.0


class TestAnnProperties:
    @given(
        data=st.lists(
            st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=3),
            min_size=2,
            max_size=40,
        )
    )
    @_SETTINGS
    def test_standard_scaler_round_trip(self, data):
        array = np.array(data, dtype=float)
        scaler = StandardScaler().fit(array)
        recovered = scaler.inverse_transform(scaler.transform(array))
        assert np.allclose(recovered, array, atol=1e-6, rtol=1e-6)

    @given(
        data=st.lists(
            st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=2),
            min_size=2,
            max_size=40,
        )
    )
    @_SETTINGS
    def test_minmax_scaler_bounds(self, data):
        array = np.array(data, dtype=float)
        scaler = MinMaxScaler(margin=0.05).fit(array)
        scaled = scaler.transform(array)
        assert scaled.min() >= 0.0 - 1e-9
        assert scaled.max() <= 1.0 + 1e-9

    @given(
        inputs=st.lists(
            st.lists(st.floats(-5, 5), min_size=4, max_size=4),
            min_size=1,
            max_size=16,
        ),
        seed=st.integers(0, 1000),
    )
    @_SETTINGS
    def test_network_outputs_finite(self, inputs, seed):
        net = NeuralNetwork((4, 6, 2), seed=seed)
        outputs = net.predict(np.array(inputs, dtype=float))
        assert np.isfinite(outputs).all()

    @given(
        values=st.dictionaries(
            st.sampled_from(["1", "2a", "2b", "3", "4"]),
            st.floats(0.01, 10.0),
            min_size=2,
            max_size=5,
        )
    )
    @_SETTINGS
    def test_selector_picks_the_maximum(self, values):
        selector = ConfigurationSelector()
        best = selector.select(values)
        maximum = max(values.values())
        assert values[best] == pytest.approx(maximum)
        # When the maximum is unique the selected configuration is also the
        # rank-1 configuration; on exact ties any maximal entry is acceptable.
        if sum(1 for v in values.values() if v == maximum) == 1:
            assert rank_of_selection(best, values) == 1


class TestBudgetProperties:
    @given(timesteps=st.integers(1, 10_000), fraction=st.floats(0.01, 1.0))
    @_SETTINGS
    def test_sampling_budget_bounds(self, timesteps, fraction):
        budget = sampling_budget(timesteps, fraction)
        assert 1 <= budget <= max(1, timesteps)
        assert budget <= timesteps * fraction + 1
