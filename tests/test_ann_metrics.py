"""Unit tests for the regression / prediction error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    error_cdf,
    fraction_below,
    mean_absolute_error,
    mean_squared_error,
    median_relative_error,
    r_squared,
    relative_errors,
    root_mean_squared_error,
)


class TestBasicMetrics:
    def test_mse_and_rmse(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, 2.0, 5.0])
        assert mean_squared_error(actual, predicted) == pytest.approx(4.0 / 3.0)
        assert root_mean_squared_error(actual, predicted) == pytest.approx(
            np.sqrt(4.0 / 3.0)
        )

    def test_mae(self):
        assert mean_absolute_error([1.0, -1.0], [2.0, 1.0]) == pytest.approx(1.5)

    def test_perfect_prediction_metrics(self):
        data = np.array([0.5, 1.5, 2.5])
        assert mean_squared_error(data, data) == 0.0
        assert r_squared(data, data) == pytest.approx(1.0)

    def test_r_squared_of_mean_predictor_is_zero(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        predicted = np.full(4, actual.mean())
        assert r_squared(actual, predicted) == pytest.approx(0.0)

    def test_r_squared_constant_actual(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r_squared([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestRelativeErrors:
    def test_definition_matches_paper(self):
        actual = np.array([2.0, 4.0])
        predicted = np.array([1.8, 5.0])
        errors = relative_errors(actual, predicted)
        assert errors == pytest.approx([0.1, 0.25])

    def test_zero_actuals_are_excluded(self):
        errors = relative_errors([0.0, 2.0], [1.0, 1.0])
        assert errors == pytest.approx([0.5])

    def test_all_zero_actuals_raise(self):
        with pytest.raises(ValueError):
            relative_errors([0.0, 0.0], [1.0, 1.0])

    def test_median_relative_error(self):
        assert median_relative_error([1.0, 2.0, 4.0], [1.1, 2.2, 4.0]) == pytest.approx(0.1)


class TestErrorDistributions:
    def test_error_cdf_monotone_and_bounded(self):
        errors = [0.02, 0.05, 0.08, 0.2, 0.5]
        thresholds, cdf = error_cdf(errors)
        assert list(thresholds) == pytest.approx(list(np.linspace(0, 1, 11)))
        assert all(0.0 <= f <= 1.0 for f in cdf)
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    def test_error_cdf_custom_thresholds(self):
        _, cdf = error_cdf([0.1, 0.3], thresholds=[0.2])
        assert cdf[0] == pytest.approx(0.5)

    def test_error_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            error_cdf([])

    def test_fraction_below(self):
        assert fraction_below([0.01, 0.04, 0.2], 0.05) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            fraction_below([], 0.05)
