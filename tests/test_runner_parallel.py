"""Golden-value tests for the concurrent experiment cell runner.

The parallel runner must be a pure performance feature: for a fixed seed,
fanning cells out over a process pool must produce bit-identical
``WorkloadRunReport`` aggregates to running the same cells serially — even
when a worker process crashes mid-sweep (the runner falls back to serial
re-execution) or when the cell list is empty.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments import (
    POLICY_BUILDERS,
    RunCell,
    build_cell_policy,
    execute_cell,
    run_cells,
)
from repro.core import StaticPolicy
from repro.machine import CONFIG_2B
from repro.openmp import PhaseDirective


CELLS = (
    RunCell(workload="IS", policy="static-4", seed=1, max_timesteps=3),
    RunCell(workload="IS", policy="static-2b", seed=2, max_timesteps=3),
    RunCell(workload="CG", policy="search", seed=3, max_timesteps=6),
    RunCell(workload="MG", policy="static-1", seed=4, max_timesteps=2),
)


def _aggregates(report):
    """Everything a WorkloadRunReport accumulates, as comparable values."""
    return {
        "workload": report.workload_name,
        "controller": report.controller_name,
        "time": report.time_seconds,
        "energy": report.energy_joules,
        "overhead": report.sampling_overhead_seconds,
        "power": report.average_power_watts,
        "ed2": report.ed2,
        "phases": {
            name: (
                summary.instances,
                summary.time_seconds,
                summary.energy_joules,
                summary.overhead_seconds,
                dict(summary.configurations),
            )
            for name, summary in report.phases.items()
        },
    }


class TestGoldenSerialVsParallel:
    def test_parallel_reports_bit_identical_to_serial(self):
        serial = run_cells(CELLS)
        parallel = run_cells(CELLS, processes=4)
        assert len(serial) == len(parallel) == len(CELLS)
        for s, p in zip(serial, parallel):
            # Exact equality, not approx: identical seeds must give
            # identical floating-point aggregates.
            assert _aggregates(s) == _aggregates(p)

    def test_shared_memo_keeps_serial_and_parallel_bit_identical(self):
        """A memo host seeds every cell without perturbing any report.

        Memoized cells are deterministic and noise-free, so sharing them
        across the pool is a pure performance feature: reports must equal
        the no-memo golden run exactly, serially and in parallel.  What the
        host memo actually carries are the suite-calibration probe cells
        every cell execution otherwise re-simulates from scratch.
        """
        from repro.machine import Machine

        host = Machine(noise_sigma=0.0)
        golden = run_cells(CELLS)

        # Cold host: the first sweep's workers simulate the calibration
        # probes themselves and hand them back as deltas.
        serial = run_cells(CELLS, memo_machine=host)
        info = host.execution_memo_info()
        assert info.size > 0  # calibration probe cells flowed back
        assert info.merged_misses > 0
        seeded_cells = info.size

        # Warm host: the next sweep's workers recalibrate entirely from the
        # seeded snapshot — pure cross-process hits, nothing re-simulated.
        parallel = run_cells(CELLS, processes=4, memo_machine=host)
        info = host.execution_memo_info()
        assert info.size == seeded_cells
        assert info.merged_hits > 0

        for g, s, p in zip(golden, serial, parallel):
            assert _aggregates(g) == _aggregates(s) == _aggregates(p)

    def test_incompatible_memo_host_rejected(self):
        """A host with divergent model parameters must not seed workers —
        memo keys carry no model information, so its cells would silently
        corrupt every worker's suite calibration."""
        from repro.machine import CPUModel, Machine

        host = Machine(
            noise_sigma=0.0, cpu_model=CPUModel(branch_misprediction_rate=0.08)
        )
        with pytest.raises(ValueError, match="not compatible"):
            run_cells(CELLS[:1], memo_machine=host)

    def test_cells_are_order_independent(self):
        reversed_reports = run_cells(list(reversed(CELLS)))
        forward_reports = run_cells(CELLS)
        for fwd, rev in zip(forward_reports, reversed(reversed_reports)):
            assert _aggregates(fwd) == _aggregates(rev)

    def test_repeated_execution_is_deterministic(self):
        cell = CELLS[0]
        assert _aggregates(execute_cell(cell)) == _aggregates(execute_cell(cell))

    def test_distinct_seeds_differ(self):
        noisy_a = execute_cell(RunCell("IS", "static-4", seed=10, max_timesteps=3))
        noisy_b = execute_cell(RunCell("IS", "static-4", seed=11, max_timesteps=3))
        assert noisy_a.time_seconds != noisy_b.time_seconds


class TestEdgeCells:
    def test_empty_cell_list_is_noop(self):
        assert run_cells([]) == []
        assert run_cells([], processes=4) == []

    def test_unknown_policy_spec_raises(self):
        with pytest.raises(KeyError):
            build_cell_policy("nonexistent-policy")

    def test_prediction_spec_requires_bundle(self):
        with pytest.raises(ValueError):
            build_cell_policy("prediction", bundle=None)

    def test_unknown_policy_in_parallel_surfaces_in_caller(self):
        bad = [RunCell("IS", "nonexistent-policy", seed=1, max_timesteps=2)]
        # The pool retries, warns, and the serial fallback then raises the
        # real error with an ordinary traceback.
        with pytest.warns(RuntimeWarning, match="re-running them serially"):
            with pytest.raises(KeyError):
                run_cells(bad, processes=2)


class _CrashInWorkerPolicy(StaticPolicy):
    """Static policy that kills the process — but only inside pool workers.

    In the parent process it behaves exactly like ``StaticPolicy`` so the
    serial fallback produces the golden report.
    """

    def before_phase(self, region, timestep):
        if multiprocessing.parent_process() is not None:
            os._exit(13)  # simulate a hard worker crash (no exception, no cleanup)
        return super().before_phase(region, timestep)


class TestWorkerCrashRecovery:
    @pytest.fixture(autouse=True)
    def crashy_policy(self):
        POLICY_BUILDERS["crash-in-worker"] = lambda bundle: _CrashInWorkerPolicy(
            CONFIG_2B
        )
        yield
        POLICY_BUILDERS.pop("crash-in-worker", None)

    def test_crashed_cells_recovered_serially_with_identical_aggregates(self):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash-policy registration requires fork start method")
        cells = [
            RunCell("IS", "static-4", seed=1, max_timesteps=3),
            RunCell("IS", "crash-in-worker", seed=2, max_timesteps=3),
            RunCell("IS", "static-2b", seed=3, max_timesteps=3),
        ]
        golden = [
            execute_cell(cells[0]),
            execute_cell(RunCell("IS", "static-2b", seed=2, max_timesteps=3)),
            execute_cell(cells[2]),
        ]
        with pytest.warns(RuntimeWarning, match="re-running them serially"):
            reports = run_cells(cells, processes=2)
        assert len(reports) == 3
        # The crashing cell was re-run serially (where the policy is benign
        # and equals static-2b); the healthy cells are unaffected.
        for report, expected in zip(reports, golden):
            assert report.time_seconds == expected.time_seconds
            assert report.energy_joules == expected.energy_joules
        assert reports[1].controller_name.startswith("static")

    def test_crash_without_retry_raises(self):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash-policy registration requires fork start method")
        cells = [RunCell("IS", "crash-in-worker", seed=2, max_timesteps=3)]
        with pytest.raises(RuntimeError, match="failed in worker"):
            run_cells(cells, processes=2, retry_failed_serially=False)


class TestMemoProbeSideEffectFree:
    """The host-compatibility probe must not touch the host's memo state."""

    def test_probe_leaves_counters_and_memo_untouched(self):
        from repro.experiments.common import _assert_memo_host_compatible
        from repro.machine import Machine

        host = Machine(noise_sigma=0.0)
        _assert_memo_host_compatible(host)
        info = host.execution_memo_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)
        assert (info.merged_hits, info.merged_misses) == (0, 0)

    def test_run_cells_moves_only_merge_accounting_on_the_host(self):
        from repro.experiments.common import _MEMO_PROBE
        from repro.machine import Machine

        host = Machine(noise_sigma=0.0)
        run_cells(CELLS[:1], memo_machine=host)
        info = host.execution_memo_info()
        # The probe ran through the scalar path and the cells executed in
        # their own calibration machines: the host's own hit/miss counters
        # stay zero, only the merged_* accounting moves.
        assert (info.hits, info.misses) == (0, 0)
        assert info.merged_misses > 0
        # And the probe cell itself never leaks into the host memo.
        snapshot = host.export_execution_memo()
        fingerprints = {key[0] for key, _ in snapshot.cells}
        assert _MEMO_PROBE.fingerprint() not in fingerprints


class _FailInWorkerPolicy(StaticPolicy):
    """Raises inside pool workers only; benign in the parent process.

    Unlike ``_CrashInWorkerPolicy`` the pool itself survives, so the cell
    fails in *both* pool generations and lands in the serial fallback —
    exercising the retry-seeding path without breaking its neighbours.
    """

    def before_phase(self, region, timestep):
        if multiprocessing.parent_process() is not None:
            raise RuntimeError("deliberate worker-only failure")
        return super().before_phase(region, timestep)


class TestRetryGenerationMemoSeeding:
    """Retried cells must seed from the host's current (absorbed) memo.

    Regression test: the retry pool and the serial fallback used to re-seed
    from the stale call-time snapshot, re-simulating every calibration cell
    the first generation had already handed back to the host.
    """

    @pytest.fixture(autouse=True)
    def faily_policy(self):
        POLICY_BUILDERS["fail-in-worker"] = lambda bundle: _FailInWorkerPolicy(
            CONFIG_2B
        )
        yield
        POLICY_BUILDERS.pop("fail-in-worker", None)

    def test_serial_fallback_seeds_from_absorbed_deltas(self):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fail-policy registration requires fork start method")
        from repro.machine import Machine

        healthy = RunCell("IS", "static-4", seed=1, max_timesteps=3)
        flaky = RunCell("IS", "fail-in-worker", seed=2, max_timesteps=3)

        # Reference: the same two cells run serially against one warm host.
        # The second cell's calibration is pure hits on what the first one
        # simulated (both are IS cells sharing calibration probes).
        reference_host = Machine(noise_sigma=0.0)
        run_cells([healthy], memo_machine=reference_host)
        run_cells(
            [RunCell("IS", "static-2b", seed=2, max_timesteps=3)],
            memo_machine=reference_host,
        )
        reference = reference_host.execution_memo_info()
        assert reference.merged_hits > 0

        # Failure path: the flaky cell fails in both pool generations and
        # is recovered by the serial fallback in the parent (where the
        # policy equals static-2b).  With fallback seeding fixed, the
        # host's accounting is bit-identical to the serial reference; with
        # the stale call-time snapshot it would re-simulate every
        # calibration cell (merged_hits == 0, merged_misses doubled).
        host = Machine(noise_sigma=0.0)
        with pytest.warns(RuntimeWarning, match="re-running them serially"):
            reports = run_cells([healthy, flaky], processes=2, memo_machine=host)
        assert len(reports) == 2
        info = host.execution_memo_info()
        assert info.size == reference.size
        assert info.merged_hits == reference.merged_hits
        assert info.merged_misses == reference.merged_misses
