"""End-to-end integration tests across all layers of the library."""

from __future__ import annotations

import pytest

from repro.core import (
    ACTOR,
    OraclePhasePolicy,
    PredictionPolicy,
    SearchPolicy,
    StaticPolicy,
    measure_oracle,
    train_predictor_bundle,
)
from repro.machine import CONFIG_2B, CONFIG_4, Machine
from repro.openmp import OpenMPRuntime
from repro.workloads import SyntheticWorkloadGenerator, nas_suite


class TestFullAdaptationPipeline:
    """Train offline, adapt online, verify against the oracle."""

    def test_leave_one_out_adaptation_on_mg(self, machine, suite, fast_options):
        training, target = suite.leave_one_out("MG")
        bundle = train_predictor_bundle(machine, training, options=fast_options)
        oracle = measure_oracle(machine, target)

        actor = ACTOR(OpenMPRuntime(machine, seed=21, keep_executions=False))
        static = actor.run_with_policy(target, StaticPolicy(CONFIG_4))
        policy = PredictionPolicy(bundle)
        adapted = actor.run_with_policy(target, policy)
        phase_optimal = actor.run_with_policy(target, OraclePhasePolicy(oracle))

        # The adapted run must land between the static default and the
        # phase-optimal oracle in energy-delay-squared.
        assert adapted.ed2 < static.ed2
        assert adapted.ed2 >= phase_optimal.ed2 * 0.95
        # MG prefers two loosely coupled cores for its dominant phases.
        decisions = policy.decisions()
        assert any(config in ("2b", "2a", "1") for config in decisions.values())

    def test_prediction_matches_oracle_choice_for_most_phases(
        self, machine, suite, trained_bundle
    ):
        workload = suite.get("LU-HP")
        oracle = measure_oracle(machine, workload)
        actor = ACTOR(OpenMPRuntime(machine, seed=22, keep_executions=False))
        policy = PredictionPolicy(trained_bundle)
        actor.run_with_policy(workload, policy)
        optimal = oracle.phase_optimal_configurations(metric="time_seconds")
        agreements = sum(
            1
            for phase, choice in policy.decisions().items()
            if choice == optimal[phase]
        )
        # The majority of phases should get the truly best (or tied-best)
        # configuration even with a predictor trained on other benchmarks.
        assert agreements >= len(optimal) // 2

    def test_search_and_prediction_agree_on_clear_cases(self, machine, suite, trained_bundle):
        workload = suite.get("IS")
        actor = ACTOR(OpenMPRuntime(machine, seed=23, keep_executions=False))
        search = SearchPolicy()
        prediction = PredictionPolicy(trained_bundle)
        actor.run_with_policy(workload, search)
        actor.run_with_policy(workload, prediction)
        # Both policies must avoid the pathological tightly coupled pair for
        # the cache-thrashing rank phase.
        assert search.decisions()["is.rank"] != "2a"
        assert prediction.decisions()["is.rank"] != "2a"

    def test_adaptation_generalizes_to_synthetic_workloads(
        self, machine, trained_bundle
    ):
        generator = SyntheticWorkloadGenerator(seed=31)
        workload = generator.random_workload("SYNTH", num_phases=4, timesteps=40)
        oracle = measure_oracle(machine, workload)
        actor = ACTOR(OpenMPRuntime(machine, seed=24, keep_executions=False))
        static = actor.run_with_policy(workload, StaticPolicy(CONFIG_4))
        adapted = actor.run_with_policy(workload, PredictionPolicy(trained_bundle))
        phase_optimal = actor.run_with_policy(workload, OraclePhasePolicy(oracle))
        # Never catastrophically worse than the default, and bounded below by
        # the oracle.
        assert adapted.time_seconds < static.time_seconds * 1.15
        assert adapted.time_seconds >= phase_optimal.time_seconds * 0.98

    def test_reports_conserve_energy_accounting(self, machine, suite, trained_bundle):
        workload = suite.get("FT")
        actor = ACTOR(OpenMPRuntime(machine, seed=25))
        report = actor.run_with_policy(workload, PredictionPolicy(trained_bundle))
        total_from_phases = sum(s.energy_joules for s in report.phases.values())
        assert report.energy_joules == pytest.approx(total_from_phases, rel=1e-9)
        total_time = sum(s.time_seconds for s in report.phases.values())
        assert report.time_seconds == pytest.approx(total_time, rel=1e-9)


class TestCrossSuiteConsistency:
    def test_static_runs_match_oracle_predictions(self, machine, suite):
        """Running a workload under a static policy must agree with the sum
        of oracle measurements (same machine, no noise)."""
        workload = suite.get("MG")
        oracle = measure_oracle(machine, workload)
        actor = ACTOR(OpenMPRuntime(machine, seed=26, keep_executions=False))
        report = actor.run_with_policy(workload, StaticPolicy(CONFIG_2B))
        assert report.time_seconds == pytest.approx(
            oracle.application_time_seconds("2b"), rel=0.02
        )
        assert report.energy_joules == pytest.approx(
            oracle.application_energy_joules("2b"), rel=0.02
        )

    def test_suite_rebuild_is_deterministic(self):
        suite_a = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
        suite_b = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
        for wa, wb in zip(suite_a, suite_b):
            assert wa.name == wb.name
            for pa, pb in zip(wa.phases, wb.phases):
                assert pa.work.instructions == pytest.approx(pb.work.instructions)
