"""Unit tests for activations and scalers of the ANN library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    ACTIVATIONS,
    Identity,
    MinMaxScaler,
    ReLU,
    Sigmoid,
    StandardScaler,
    Tanh,
    get_activation,
)


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        sigmoid = Sigmoid()
        x = np.array([-50.0, 0.0, 50.0])
        y = sigmoid.value(x)
        assert y[0] < 1e-6
        assert y[1] == pytest.approx(0.5)
        assert y[2] > 1 - 1e-6

    def test_sigmoid_derivative_matches_numerical(self):
        sigmoid = Sigmoid()
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numerical = (sigmoid.value(x + eps) - sigmoid.value(x - eps)) / (2 * eps)
        analytic = sigmoid.derivative_from_output(sigmoid.value(x))
        assert np.allclose(numerical, analytic, atol=1e-6)

    def test_tanh_derivative_matches_numerical(self):
        tanh = Tanh()
        x = np.linspace(-2, 2, 9)
        eps = 1e-6
        numerical = (tanh.value(x + eps) - tanh.value(x - eps)) / (2 * eps)
        analytic = tanh.derivative_from_output(tanh.value(x))
        assert np.allclose(numerical, analytic, atol=1e-6)

    def test_relu_and_identity(self):
        relu = ReLU()
        identity = Identity()
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(relu.value(x), [0.0, 0.0, 2.0])
        assert np.allclose(identity.value(x), x)
        assert np.allclose(identity.derivative_from_output(x), 1.0)

    def test_sigmoid_handles_extreme_inputs_without_overflow(self):
        y = Sigmoid().value(np.array([-1e6, 1e6]))
        assert np.isfinite(y).all()

    def test_registry_lookup(self):
        assert isinstance(get_activation("sigmoid"), Sigmoid)
        assert isinstance(get_activation("TANH"), Tanh)
        assert set(ACTIVATIONS) == {"sigmoid", "tanh", "relu", "identity"}
        with pytest.raises(KeyError):
            get_activation("swish")


class TestStandardScaler:
    def test_fit_transform_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 3)) * [1.0, 10.0, 100.0]
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_column_passthrough(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_requires_2d_input(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        data = np.array([[0.0], [5.0], [10.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_custom_range_and_margin(self):
        data = np.array([[0.0], [10.0]])
        scaler = MinMaxScaler(low=0.0, high=1.0, margin=0.1)
        scaled = scaler.fit_transform(data)
        assert scaled.min() == pytest.approx(0.1)
        assert scaled.max() == pytest.approx(0.9)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(-5, 20, size=(40, 2))
        scaler = MinMaxScaler(margin=0.05).fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_column_does_not_nan(self):
        data = np.full((5, 1), 3.0)
        scaled = MinMaxScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            MinMaxScaler(low=1.0, high=0.0)
        with pytest.raises(ValueError):
            MinMaxScaler(margin=0.6)
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((1, 1)))
