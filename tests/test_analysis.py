"""Tests for the analysis metrics, studies and reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    EnergyStudy,
    Figure,
    ScalabilityStudy,
    energy_delay_product,
    energy_delay_squared,
    energy_joules,
    format_nested_table,
    format_series,
    format_table,
    geometric_mean,
    normalize,
    normalize_map,
    percent_change,
    speedup,
)
from repro.workloads import nas_suite
from repro.machine import Machine


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_normalize_and_map(self):
        assert normalize(5.0, 10.0) == pytest.approx(0.5)
        with pytest.raises(ZeroDivisionError):
            normalize(1.0, 0.0)
        table = normalize_map({"a": 2.0, "b": 4.0}, "a")
        assert table == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            normalize_map({"a": 1.0}, "missing")

    def test_energy_metrics(self):
        assert energy_joules(100.0, 2.0) == pytest.approx(200.0)
        assert energy_delay_product(200.0, 2.0) == pytest.approx(400.0)
        assert energy_delay_squared(200.0, 2.0) == pytest.approx(800.0)
        with pytest.raises(ValueError):
            energy_joules(-1.0, 2.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_percent_change(self):
        assert percent_change(10.0, 9.0) == pytest.approx(-10.0)
        with pytest.raises(ZeroDivisionError):
            percent_change(0.0, 1.0)


class TestReporting:
    def test_format_table_aligns_and_formats_floats(self):
        text = format_table([["a", 1.23456], ["bb", 2.0]], headers=["name", "value"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert "2.000" in text

    def test_format_table_empty(self):
        assert format_table([]) == ""

    def test_format_nested_table_orders_columns(self):
        data = {"r1": {"c1": 1.0, "c2": 2.0}, "r2": {"c1": 3.0, "c2": 4.0}}
        text = format_nested_table(data)
        assert text.splitlines()[0].split()[:3] == ["benchmark", "c1", "c2"]

    def test_format_nested_table_missing_cell_is_nan(self):
        data = {"r1": {"c1": 1.0}, "r2": {}}
        text = format_nested_table(data, columns=["c1"])
        assert "nan" in text.lower()

    def test_format_series(self):
        text = format_series({"a": 0.5}, name="metric")
        assert "metric" in text and "0.500" in text

    def test_figure_render(self):
        figure = Figure("figX", "demo", {"k": 1}, "body", notes="note")
        rendered = figure.render()
        assert "figX" in rendered and "body" in rendered and "note" in rendered


@pytest.fixture(scope="module")
def small_suite(machine):
    return nas_suite(machine=machine, names=["BT", "IS", "CG"], variability=0.0)


class TestStudies:
    def test_scalability_study_shapes(self, machine, small_suite):
        study = ScalabilityStudy.measure(machine, small_suite)
        assert {b.name for b in study.benchmarks} == {"BT", "IS", "CG"}
        times = study.times_table()
        assert set(times["BT"]) == {"1", "2a", "2b", "3", "4"}
        speedups = study.speedup_table()
        assert speedups["BT"]["1"] == pytest.approx(1.0)
        assert study.benchmark("IS").best_configuration() == "2b"
        with pytest.raises(KeyError):
            study.benchmark("ZZ")

    def test_scalability_class_statistics(self, machine, small_suite):
        study = ScalabilityStudy.measure(machine, small_suite)
        assert study.class_average_speedup("scalable", "4") > 2.0
        assert study.geometric_mean_speedup("4") > 1.0
        counts = study.best_configuration_counts()
        assert sum(counts.values()) == 3
        with pytest.raises(ValueError):
            study.class_average_speedup("unknown-class")

    def test_energy_study_reuses_oracles(self, machine, small_suite):
        scal = ScalabilityStudy.measure(machine, small_suite)
        energy = EnergyStudy.measure(machine, small_suite, oracles=scal.oracles)
        bt = energy.benchmark("BT")
        assert bt.power_ratio("4", "1") > 1.05
        assert bt.energy_ratio("4", "1") < 0.8
        assert bt.most_energy_efficient() in {"3", "4"}
        normalized = bt.normalized_energy("4")
        assert normalized["4"] == pytest.approx(1.0)

    def test_energy_study_suite_statistics(self, machine, small_suite):
        energy = EnergyStudy.measure(machine, small_suite)
        increase = energy.average_power_increase_four_vs_one()
        assert 0.0 < increase < 0.35
        geo = energy.geometric_mean_normalized("energy")
        assert set(geo) == {"1", "2a", "2b", "3", "4"}
        assert geo["4"] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            energy.geometric_mean_normalized("volume")
        with pytest.raises(KeyError):
            energy.benchmark("ZZ")

    def test_degrading_benchmark_energy_shape(self, machine, small_suite):
        energy = EnergyStudy.measure(machine, small_suite)
        is_bench = energy.benchmark("IS")
        # IS consumes less energy at its best configuration (2b) than on all
        # four cores.
        assert is_bench.energies["2b"] < is_bench.energies["4"]
