"""Golden capture of the Figure 8 policy-comparison experiment.

Pinned before the fig8 driver was rewired onto the degenerate one-node
fleet (``repro.cluster``): the rewiring must keep every published value of
the figure bit-identical.  The context mirrors the reduced four-benchmark
fast setup used across the experiment tests, so a full policy comparison
(static / global-optimal / phase-optimal / prediction) runs in seconds.

Values were captured from the pre-fleet driver and are asserted at
``rel=1e-12`` — the simulator and training pipeline are deterministic, so
any drift means the rewiring changed a decision, not just noise.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, run_fig8
from repro.machine import Machine
from repro.workloads import nas_suite

_RTOL = 1e-12

_GOLDEN = {'averages': {'ed2': {'4-cores': 1.0,
                      'global-optimal': 0.6564781682272673,
                      'phase-optimal': 0.5532332387348241,
                      'prediction': 0.6091697450430004},
              'energy': {'4-cores': 1.0,
                         'global-optimal': 0.8534109278642554,
                         'phase-optimal': 0.8102301404039435,
                         'prediction': 0.8399587205423299},
              'power': {'4-cores': 1.0,
                        'global-optimal': 0.9730320728076391,
                        'phase-optimal': 0.9805245226410313,
                        'prediction': 0.9863198016358667},
              'time': {'4-cores': 1.0,
                       'global-optimal': 0.8770635128210909,
                       'phase-optimal': 0.826323178763136,
                       'prediction': 0.8516088992122142}},
 'is_ed2_prediction': 0.3483887610867781,
 'normalized': {'ed2': {'AVG': {'4-cores': 1.0,
                                'global-optimal': 0.6564781682272673,
                                'phase-optimal': 0.5532332387348241,
                                'prediction': 0.6091697450430004},
                        'BT': {'4-cores': 1.0,
                               'global-optimal': 1.0004083153719716,
                               'phase-optimal': 0.9101354681016133,
                               'prediction': 0.9141026482386667},
                        'CG': {'4-cores': 1.0,
                               'global-optimal': 0.9357756446359853,
                               'phase-optimal': 0.7602134057163349,
                               'prediction': 0.7771483369270091},
                        'IS': {'4-cores': 1.0,
                               'global-optimal': 0.282105228611215,
                               'phase-optimal': 0.26770282456090827,
                               'prediction': 0.3483887610867781},
                        'SP': {'4-cores': 1.0,
                               'global-optimal': 0.7032682080197938,
                               'phase-optimal': 0.5057530885201794,
                               'prediction': 0.5564040427528497}},
                'energy': {'AVG': {'4-cores': 1.0,
                                   'global-optimal': 0.8534109278642554,
                                   'phase-optimal': 0.8102301404039435,
                                   'prediction': 0.8399587205423299},
                           'BT': {'4-cores': 1.0,
                                  'global-optimal': 1.0001174749861466,
                                  'phase-optimal': 0.9656390937964439,
                                  'prediction': 0.9672303389070188},
                           'CG': {'4-cores': 1.0,
                                  'global-optimal': 0.953463389628722,
                                  'phase-optimal': 0.8964127422390931,
                                  'prediction': 0.9044438629227014},
                           'IS': {'4-cores': 1.0,
                                  'global-optimal': 0.6423321976383081,
                                  'phase-optimal': 0.6338687861261623,
                                  'prediction': 0.694788398703597},
                           'SP': {'4-cores': 1.0,
                                  'global-optimal': 0.8660003526550437,
                                  'phase-optimal': 0.7854369929161983,
                                  'prediction': 0.8189694253613201}},
                'power': {'AVG': {'4-cores': 1.0,
                                  'global-optimal': 0.9730320728076391,
                                  'phase-optimal': 0.9805245226410313,
                                  'prediction': 0.9863198016358667},
                          'BT': {'4-cores': 1.0,
                                 'global-optimal': 0.9999720865023726,
                                 'phase-optimal': 0.9946476024227879,
                                 'prediction': 0.9949411244393903},
                          'CG': {'4-cores': 1.0,
                                 'global-optimal': 0.96243224306722,
                                 'phase-optimal': 0.9734065629420025,
                                 'prediction': 0.9757093423280945},
                          'IS': {'4-cores': 1.0,
                                 'global-optimal': 0.9692458949741007,
                                 'phase-optimal': 0.9753771393180152,
                                 'prediction': 0.9811756666159678},
                          'SP': {'4-cores': 1.0,
                                 'global-optimal': 0.960985004256376,
                                 'phase-optimal': 0.9788085544198986,
                                 'prediction': 0.993588129612652}},
                'time': {'AVG': {'4-cores': 1.0,
                                 'global-optimal': 0.8770635128210909,
                                 'phase-optimal': 0.826323178763136,
                                 'prediction': 0.8516088992122142},
                         'BT': {'4-cores': 1.0,
                                'global-optimal': 1.0001453925421881,
                                'phase-optimal': 0.9708353907899798,
                                'prediction': 0.9721483162654619},
                         'CG': {'4-cores': 1.0,
                                'global-optimal': 0.9906810546891959,
                                'phase-optimal': 0.920902710507514,
                                'prediction': 0.9269603391975834},
                         'IS': {'4-cores': 1.0,
                                'global-optimal': 0.6627133537207005,
                                'phase-optimal': 0.6498704558211853,
                                'prediction': 0.70811825276904},
                         'SP': {'4-cores': 1.0,
                                'global-optimal': 0.9011590699328001,
                                'phase-optimal': 0.8024418967013381,
                                'prediction': 0.8242544379838691}}},
 'prediction_decisions': {'BT': {'bt.add': '2b',
                                 'bt.compute_rhs': '4',
                                 'bt.x_solve': '4',
                                 'bt.y_solve': '4',
                                 'bt.z_solve': '4'},
                          'CG': {'cg.axpy': '2b',
                                 'cg.dot': '4',
                                 'cg.precond': '4',
                                 'cg.spmv': '2b'},
                          'IS': {'is.bucket_scan': '2b',
                                 'is.key_shift': '2b',
                                 'is.rank': '2b',
                                 'is.verify': '4'},
                          'SP': {'sp.add': '2b',
                                 'sp.adi_sync': '4',
                                 'sp.compute_rhs': '2b',
                                 'sp.error_norm': '4',
                                 'sp.ninvr': '4',
                                 'sp.pinvr': '4',
                                 'sp.txinvr': '4',
                                 'sp.tzetar': '4',
                                 'sp.x_solve': '4',
                                 'sp.y_solve': '4',
                                 'sp.z_solve': '2b'}}}


@pytest.fixture(scope="module")
def fig8_figure():
    suite = nas_suite(
        machine=Machine(noise_sigma=0.0),
        names=["BT", "CG", "IS", "SP"],
        variability=0.0,
    )
    ctx = ExperimentContext(machine=Machine(), suite=suite, fast=True, seed=11)
    return run_fig8(ctx)


def _assert_matches(actual, expected, path="figure"):
    """Recursive bit-identity walk (floats at ``rel=_RTOL``)."""
    if isinstance(expected, dict):
        assert set(actual) >= set(expected), path
        for key, value in expected.items():
            _assert_matches(actual[key], value, f"{path}.{key}")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=_RTOL), path
    else:
        assert actual == expected, path


class TestFig8Golden(object):
    def test_normalized_tables_bit_identical(self, fig8_figure):
        _assert_matches(
            fig8_figure.data["normalized"], _GOLDEN["normalized"], "normalized"
        )

    def test_averages_bit_identical(self, fig8_figure):
        _assert_matches(
            fig8_figure.data["averages"], _GOLDEN["averages"], "averages"
        )

    def test_prediction_decisions_bit_identical(self, fig8_figure):
        _assert_matches(
            fig8_figure.data["prediction_decisions"],
            _GOLDEN["prediction_decisions"],
            "prediction_decisions",
        )

    def test_is_ed2_prediction_pinned(self, fig8_figure):
        _assert_matches(
            fig8_figure.data["is_ed2_prediction"],
            _GOLDEN["is_ed2_prediction"],
            "is_ed2_prediction",
        )
