"""Tests for the IPC predictor, the linear baseline and the training pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FULL_EVENT_SET,
    IPCPredictor,
    LinearIPCModel,
    PredictorBundle,
    REDUCED_EVENT_SET,
    collect_training_dataset,
    train_ipc_predictor,
    train_linear_predictor,
)
from repro.machine import CONFIG_2B


class TestLinearIPCModel:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(80, 3))
        targets = 2.0 + features @ np.array([0.5, -1.0, 0.25])
        model = LinearIPCModel().fit(features, targets)
        assert model.intercept == pytest.approx(2.0, abs=1e-8)
        for i, expected in enumerate([0.5, -1.0, 0.25]):
            assert model.coefficients[i] == pytest.approx(expected, abs=1e-8)
        assert model.predict_one(features[0]) == pytest.approx(targets[0], abs=1e-8)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearIPCModel().predict_one(np.zeros(3))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            LinearIPCModel().fit(np.zeros((5, 2)), np.zeros(4))


class TestDatasetCollection:
    def test_dataset_covers_all_phases(self, machine, mini_training_workloads):
        dataset = collect_training_dataset(
            machine, mini_training_workloads, samples_per_phase=2, seed=1
        )
        expected_phases = sum(w.num_phases for w in mini_training_workloads)
        assert len(dataset) == expected_phases * 2
        assert dataset.event_set is FULL_EVENT_SET
        assert dataset.sample_configuration == "4"
        assert set(dataset.target_configurations) == {"1", "2a", "2b", "3"}

    def test_features_are_finite_and_positive_ipc(self, machine, mini_training_workloads):
        dataset = collect_training_dataset(
            machine, mini_training_workloads[:2], samples_per_phase=1, seed=2
        )
        features = dataset.feature_matrix()
        assert np.isfinite(features).all()
        assert (features[:, 0] > 0).all()  # sampled IPC

    def test_noise_produces_distinct_repetitions(self, machine, mini_training_workloads):
        dataset = collect_training_dataset(
            machine, mini_training_workloads[:1], samples_per_phase=3,
            measurement_noise=0.1, seed=3,
        )
        features = dataset.feature_matrix()
        phase_rows = features[:3]
        assert not np.allclose(phase_rows[0], phase_rows[1])

    def test_zero_noise_repetitions_identical(self, machine, mini_training_workloads):
        dataset = collect_training_dataset(
            machine, mini_training_workloads[:1], samples_per_phase=2,
            measurement_noise=0.0, seed=3,
        )
        features = dataset.feature_matrix()
        assert np.allclose(features[0], features[1])

    def test_invalid_arguments(self, machine, mini_training_workloads):
        with pytest.raises(ValueError):
            collect_training_dataset(machine, mini_training_workloads, samples_per_phase=0)
        with pytest.raises(KeyError):
            collect_training_dataset(
                machine, mini_training_workloads, target_configurations=("9",)
            )


class TestPredictorTraining:
    def test_ann_predictor_has_one_model_per_target(self, trained_bundle):
        predictor = trained_bundle.full
        assert predictor.kind == "ann"
        assert set(predictor.target_configurations) == {"1", "2a", "2b", "3"}
        assert predictor.event_set.name == "full"

    def test_reduced_member_present(self, trained_bundle):
        reduced = trained_bundle.for_event_set("reduced")
        assert reduced.event_set is REDUCED_EVENT_SET

    def test_unknown_event_set_raises(self, trained_bundle):
        with pytest.raises(KeyError):
            trained_bundle.for_event_set("gigantic")

    def test_feature_vector_layout_and_missing_events(self, trained_bundle):
        predictor = trained_bundle.full
        vector = predictor.feature_vector(1.5, {"PAPI_L2_TCM": 0.01})
        assert vector.shape == (13,)
        assert vector[0] == pytest.approx(1.5)
        # Missing events are filled with zero.
        assert np.count_nonzero(vector[1:]) == 1

    def test_predictions_are_positive_and_plausible(
        self, machine, suite, trained_bundle
    ):
        from repro.machine import CONFIG_4

        predictor = trained_bundle.full
        phase = suite.get("FT").phases[0]
        # Build rates from the sample configuration for a quick sanity check.
        sample = machine.execute(phase.work, CONFIG_4.placement, apply_noise=False)
        rates = {
            e: sample.event_counts.get(e, 0.0) / sample.cycles
            for e in predictor.event_set.events
        }
        predictions = predictor.predict_from_rates(sample.ipc, rates)
        assert set(predictions) == {"1", "2a", "2b", "3"}
        for value in predictions.values():
            assert 0.0 < value < 10.0

    def test_wrong_feature_count_rejected(self, trained_bundle):
        with pytest.raises(ValueError):
            trained_bundle.full.predict(np.zeros(5))

    def test_linear_predictor_trains_and_predicts(self, machine, mini_training_workloads):
        dataset = collect_training_dataset(
            machine, mini_training_workloads, samples_per_phase=2, seed=4
        )
        predictor = train_linear_predictor(dataset)
        assert predictor.kind == "linear"
        sample = dataset.samples[0]
        predictions = predictor.predict(np.array(sample.features))
        assert set(predictions) == set(dataset.target_configurations)

    def test_training_requires_enough_samples_for_folds(
        self, machine, mini_training_workloads, fast_options
    ):
        dataset = collect_training_dataset(
            machine, mini_training_workloads[:1], samples_per_phase=1, seed=5
        )
        from repro.core import ANNTrainingOptions

        options = ANNTrainingOptions(folds=50)
        with pytest.raises(ValueError):
            train_ipc_predictor(dataset, options)

    def test_predictor_accuracy_on_training_phases(
        self, machine, suite, trained_bundle
    ):
        """Sanity: on a benchmark seen during training, the median relative
        error of the ANN predictor should be well below 30%."""
        from repro.machine import CONFIG_4

        predictor = trained_bundle.full
        errors = []
        workload = suite.get("CG")
        for phase in workload.phases:
            sample = machine.execute(phase.work, CONFIG_4.placement, apply_noise=False)
            rates = {
                e: sample.event_counts.get(e, 0.0) / sample.cycles
                for e in predictor.event_set.events
            }
            predictions = predictor.predict_from_rates(sample.ipc, rates)
            for config, predicted in predictions.items():
                from repro.machine import configuration_by_name

                actual = machine.execute(
                    phase.work, configuration_by_name(config).placement, apply_noise=False
                ).ipc
                errors.append(abs(actual - predicted) / actual)
        assert np.median(errors) < 0.30


class TestPredictorBundle:
    def test_bundle_exposes_shared_metadata(self, trained_bundle):
        assert trained_bundle.sample_configuration == "4"
        assert set(trained_bundle.target_configurations) == {"1", "2a", "2b", "3"}

    def test_bundle_without_reduced_member(self, trained_bundle):
        bundle = PredictorBundle(full=trained_bundle.full, reduced=None)
        with pytest.raises(KeyError):
            bundle.for_event_set("reduced")
