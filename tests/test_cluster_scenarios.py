"""Fault-injection tests for fleet scenarios and the fleet service tier.

Three failure modes the cluster layer must absorb without losing work:

* a node dies mid-round — its jobs are carried and reassigned, and every
  job still completes exactly once (including a failure in the *final*
  round, which forces a flush round);
* a straggler degrades the fleet's p99 latency but not correctness: the
  same jobs complete, deterministically;
* the service stops while a fleet schedule is in flight — the TCP client
  gets a structured ``shutting_down`` answer, not a dropped socket.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.cluster import (
    CapStep,
    Fleet,
    FleetJob,
    Node,
    NodeFailure,
    NodeJoin,
    ScenarioRound,
    StragglerOnset,
    jobs_from_workload,
    run_scenario,
)
from repro.machine import Machine, WorkRequest
from repro.service import AdaptationServer, FleetHandler, GridProbeRequest
from repro.workloads import nas_suite


@pytest.fixture(scope="module")
def scenario_jobs(machine):
    suite = nas_suite(machine=machine, names=["CG", "IS"], variability=0.0)
    return [job for w in suite for job in jobs_from_workload(w)]


def _two_node_fleet():
    return Fleet(
        [
            Node("east", Machine(noise_sigma=0.0)),
            Node("west", Machine(noise_sigma=0.0)),
        ]
    )


def _waves(jobs, count):
    """Split jobs into ``count`` arrival waves (round-robin, order kept)."""
    waves = [[] for _ in range(count)]
    for i, job in enumerate(jobs):
        waves[i % count].append(job)
    return [tuple(w) for w in waves]


class TestNodeFailure:
    def test_mid_run_failure_reassigns_jobs_and_loses_none(self, scenario_jobs):
        wave_a, wave_b = _waves(scenario_jobs, 2)
        report = run_scenario(
            _two_node_fleet(),
            [
                ScenarioRound(jobs=wave_a, events=(NodeFailure("west"),)),
                ScenarioRound(jobs=wave_b),
            ],
        )
        # The failed node's jobs were carried out of round 0...
        first = report.rounds[0]
        assert first.failed_nodes == ("west",)
        assert first.carried_jobs  # west had work when it died
        assert first.active_nodes == ("east",)
        # ...and re-placed on the survivor in a later round.
        assert set(first.carried_jobs) <= set(
            name
            for record in report.rounds[1:]
            for name in record.completed_jobs
        )
        # Every job completes exactly once, none double-counted or lost.
        assert report.completions() == {j.name: 1 for j in scenario_jobs}

    def test_failure_in_final_round_forces_a_flush_round(self, scenario_jobs):
        wave = tuple(scenario_jobs[:4])
        report = run_scenario(
            _two_node_fleet(),
            [ScenarioRound(jobs=wave, events=(NodeFailure("east"),))],
        )
        # The carried jobs got an extra, event-free round on the survivor.
        assert len(report.rounds) == 2
        assert report.rounds[1].active_nodes == ("west",)
        assert report.completions() == {j.name: 1 for j in wave}

    def test_pending_jobs_with_no_fleet_left_is_an_error(self, scenario_jobs):
        fleet = Fleet([Node("only", Machine(noise_sigma=0.0))])
        with pytest.raises(ValueError, match="pending jobs but the fleet is empty"):
            run_scenario(
                fleet,
                [
                    ScenarioRound(
                        jobs=tuple(scenario_jobs[:2]),
                        events=(NodeFailure("only"),),
                    )
                ],
            )

    def test_join_replaces_failed_capacity(self, scenario_jobs):
        wave_a, wave_b = _waves(scenario_jobs, 2)
        report = run_scenario(
            _two_node_fleet(),
            [
                ScenarioRound(jobs=wave_a, events=(NodeFailure("west"),)),
                ScenarioRound(
                    jobs=wave_b,
                    events=(NodeJoin(Node("north", Machine(noise_sigma=0.0))),),
                ),
            ],
        )
        assert report.rounds[1].active_nodes == ("east", "north")
        assert report.completions() == {j.name: 1 for j in scenario_jobs}


class TestStraggler:
    def test_straggler_degrades_p99_but_not_correctness(self, scenario_jobs):
        wave_a, wave_b = _waves(scenario_jobs, 2)
        rounds = [ScenarioRound(jobs=wave_a), ScenarioRound(jobs=wave_b)]
        healthy = run_scenario(_two_node_fleet(), list(rounds))
        degraded_rounds = [
            ScenarioRound(
                jobs=wave_a, events=(StragglerOnset("west", 1.6),)
            ),
            ScenarioRound(jobs=wave_b),
        ]
        degraded = run_scenario(_two_node_fleet(), degraded_rounds)
        # Latency tail suffers...
        assert degraded.p99_time_seconds() > healthy.p99_time_seconds()
        # ...but the same jobs complete, exactly once each.
        assert degraded.completions() == healthy.completions()
        # And the degraded run is still deterministic.
        rerun = run_scenario(_two_node_fleet(), list(degraded_rounds))
        assert rerun.p99_time_seconds() == degraded.p99_time_seconds()
        assert [r.total_power_watts for r in rerun.rounds] == [
            r.total_power_watts for r in degraded.rounds
        ]


class TestCapSteps:
    def test_cap_is_respected_every_round_through_steps(self, scenario_jobs):
        wave_a, wave_b = _waves(scenario_jobs, 2)
        fleet = _two_node_fleet()
        # Size the stepped-down cap off an unconstrained rehearsal.
        rehearsal = run_scenario(_two_node_fleet(), [ScenarioRound(jobs=wave_a)])
        peak = rehearsal.max_total_power_watts()
        floor = rehearsal.rounds[0].schedule.min_feasible_watts
        mid_cap = floor + 0.5 * (peak - floor)
        report = run_scenario(
            fleet,
            [
                ScenarioRound(jobs=wave_a),
                ScenarioRound(jobs=wave_b, events=(CapStep(mid_cap),)),
                ScenarioRound(events=(CapStep(None),)),
            ],
        )
        for record in report.rounds:
            if record.power_cap_watts is not None:
                assert record.total_power_watts <= record.power_cap_watts
        assert report.rounds[1].power_cap_watts == pytest.approx(mid_cap)
        assert report.completions() == {j.name: 1 for j in scenario_jobs}


class _BlockingFleetHandler(FleetHandler):
    """Fleet handler that parks in the worker thread until released."""

    def __init__(self, fleet):
        super().__init__(fleet)
        self.release = threading.Event()

    def handle_batch(self, requests):
        assert self.release.wait(timeout=10.0), "test never released the handler"
        return super().handle_batch(requests)


class TestFleetServiceShutdown:
    def test_stop_during_inflight_fleet_schedule_answers_shutting_down(self):
        work = WorkRequest(
            instructions=2e8,
            mem_fraction=0.3,
            flop_fraction=0.3,
            l1_miss_rate=0.05,
            l2_miss_rate_solo=0.3,
            working_set_mb=2.0,
        )

        async def main():
            handler = _BlockingFleetHandler(
                Fleet([Node("solo", Machine(noise_sigma=0.0))])
            )
            server = AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            request = GridProbeRequest(client_id="c0", phase="p0", work=work)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps(dict(request.to_payload(), kind="grid_probe")).encode()
                + b"\n"
            )
            await writer.drain()
            await asyncio.sleep(0.1)  # the schedule is now parked in flight
            stop = asyncio.create_task(server.stop())
            response = json.loads(await reader.readline())
            handler.release.set()
            await stop
            writer.close()
            await writer.wait_closed()
            return response

        response = asyncio.run(main())
        if response is None:
            pytest.skip("loopback sockets unavailable in this environment")
        assert response["ok"] is False
        assert response["error"] == "shutting_down"
