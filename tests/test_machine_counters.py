"""Unit tests for the PAPI-like performance counter interface."""

from __future__ import annotations

import pytest

from repro.machine import (
    ALWAYS_AVAILABLE,
    EVENT_NAMES,
    PREDICTION_EVENTS,
    REDUCED_PREDICTION_EVENTS,
    CounterReading,
    PerformanceCounterFile,
    event_by_name,
    event_pairs,
)


class TestEventCatalogue:
    def test_twelve_prediction_events(self):
        assert len(PREDICTION_EVENTS) == 12

    def test_fixed_counters_are_not_prediction_inputs(self):
        assert "PAPI_TOT_INS" in ALWAYS_AVAILABLE
        assert "PAPI_TOT_CYC" in ALWAYS_AVAILABLE
        assert "PAPI_TOT_INS" not in PREDICTION_EVENTS

    def test_reduced_set_is_subset_of_full_set(self):
        assert set(REDUCED_PREDICTION_EVENTS) <= set(PREDICTION_EVENTS)

    def test_event_by_name_lookup(self):
        event = event_by_name("PAPI_L2_TCM")
        assert event.prediction_input

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            event_by_name("PAPI_NOT_REAL")

    def test_event_names_unique(self):
        assert len(set(EVENT_NAMES)) == len(EVENT_NAMES)


class TestEventPairs:
    def test_default_pairs_cover_all_prediction_events(self):
        pairs = event_pairs()
        flattened = [e for pair in pairs for e in pair]
        assert flattened == list(PREDICTION_EVENTS)
        assert all(len(pair) <= 2 for pair in pairs)
        assert len(pairs) == 6

    def test_custom_register_width(self):
        pairs = event_pairs(PREDICTION_EVENTS, registers=4)
        assert len(pairs) == 3
        assert all(len(pair) <= 4 for pair in pairs)

    def test_rejects_zero_registers(self):
        with pytest.raises(ValueError):
            event_pairs(registers=0)

    def test_rejects_unknown_event(self):
        with pytest.raises(KeyError):
            event_pairs(["PAPI_BOGUS"])


class TestCounterReading:
    def test_ipc_from_fixed_counters(self):
        reading = CounterReading(values={}, cycles=200.0, instructions=100.0)
        assert reading.ipc == pytest.approx(0.5)

    def test_zero_cycles_gives_zero_ipc(self):
        reading = CounterReading(values={}, cycles=0.0, instructions=100.0)
        assert reading.ipc == 0.0

    def test_rate_normalizes_by_cycles(self):
        reading = CounterReading(
            values={"PAPI_L2_TCM": 50.0}, cycles=1000.0, instructions=400.0
        )
        assert reading.rate("PAPI_L2_TCM") == pytest.approx(0.05)

    def test_rate_of_unobserved_event_is_zero(self):
        reading = CounterReading(values={}, cycles=1000.0, instructions=400.0)
        assert reading.rate("PAPI_L2_TCM") == 0.0

    def test_rates_for_selected_events(self):
        reading = CounterReading(
            values={"PAPI_L2_TCM": 50.0, "PAPI_BUS_TRN": 20.0},
            cycles=1000.0,
            instructions=400.0,
        )
        rates = reading.rates(["PAPI_L2_TCM"])
        assert rates == {"PAPI_L2_TCM": pytest.approx(0.05)}


class TestPerformanceCounterFile:
    def test_default_two_registers(self):
        assert PerformanceCounterFile().num_registers == 2

    def test_programming_more_than_registers_fails(self):
        counters = PerformanceCounterFile(num_registers=2)
        with pytest.raises(ValueError):
            counters.program(["PAPI_L1_DCM", "PAPI_L2_DCM", "PAPI_L2_TCM"])

    def test_programming_fixed_event_fails(self):
        counters = PerformanceCounterFile()
        with pytest.raises(ValueError):
            counters.program(["PAPI_TOT_INS"])

    def test_programming_duplicates_fails(self):
        counters = PerformanceCounterFile()
        with pytest.raises(ValueError):
            counters.program(["PAPI_L1_DCM", "PAPI_L1_DCM"])

    def test_read_exposes_only_programmed_and_fixed_events(self):
        counters = PerformanceCounterFile()
        counters.program(["PAPI_L2_TCM", "PAPI_BUS_TRN"])
        full = {
            "PAPI_TOT_INS": 1000.0,
            "PAPI_TOT_CYC": 2000.0,
            "PAPI_L2_TCM": 30.0,
            "PAPI_BUS_TRN": 31.0,
            "PAPI_L1_DCM": 99.0,
        }
        reading = counters.read(full, cycles=2000.0)
        assert "PAPI_L1_DCM" not in reading.values
        assert reading.values["PAPI_L2_TCM"] == 30.0
        assert reading.instructions == 1000.0
        assert reading.ipc == pytest.approx(0.5)

    def test_reprogramming_replaces_previous_events(self):
        counters = PerformanceCounterFile()
        counters.program(["PAPI_L2_TCM"])
        counters.program(["PAPI_BUS_TRN"])
        assert counters.programmed == ("PAPI_BUS_TRN",)

    def test_zero_registers_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCounterFile(num_registers=0)
