"""Shared fixtures for the test suite.

Expensive artefacts (the calibrated NAS-like suite, trained predictor
bundles, exhaustive oracle tables) are built once per session with reduced
training effort so the whole suite stays fast while still exercising the
real code paths.
"""

from __future__ import annotations

import pytest

from repro.ann import TrainingConfig
from repro.core import (
    ANNTrainingOptions,
    measure_oracle,
    train_predictor_bundle,
)
from repro.machine import Machine, WorkRequest, quad_core_xeon, standard_configurations
from repro.openmp import OpenMPRuntime
from repro.workloads import PhaseSpec, Workload, nas_suite


@pytest.fixture(scope="session")
def topology():
    """The paper's quad-core Xeon topology."""
    return quad_core_xeon()


@pytest.fixture(scope="session")
def machine():
    """A deterministic machine (no run-to-run noise)."""
    return Machine(noise_sigma=0.0)


@pytest.fixture(scope="session")
def noisy_machine():
    """A machine with the default run-to-run noise enabled."""
    return Machine()


@pytest.fixture(scope="session")
def configurations(machine):
    """The five standard threading configurations."""
    return standard_configurations(machine.topology)


@pytest.fixture(scope="session")
def suite(machine):
    """The calibrated NAS-like suite without per-instance variability."""
    return nas_suite(machine=machine, variability=0.0)


@pytest.fixture(scope="session")
def compute_work():
    """A cache-resident, computation-dominated phase characterization."""
    return WorkRequest(
        instructions=2.0e8,
        mem_fraction=0.30,
        flop_fraction=0.45,
        l1_miss_rate=0.02,
        l2_miss_rate_solo=0.06,
        working_set_mb=1.0,
        prefetch_friendliness=0.4,
        bandwidth_sensitivity=0.8,
        serial_fraction=0.005,
        barriers=2,
    )


@pytest.fixture(scope="session")
def bandwidth_work():
    """A streaming, bandwidth-bound phase characterization."""
    return WorkRequest(
        instructions=2.0e8,
        mem_fraction=0.46,
        flop_fraction=0.25,
        l1_miss_rate=0.18,
        l2_miss_rate_solo=0.65,
        working_set_mb=10.0,
        locality_exponent=0.3,
        prefetch_friendliness=0.9,
        bandwidth_sensitivity=1.0,
        serial_fraction=0.005,
        barriers=2,
    )


@pytest.fixture(scope="session")
def thrash_work():
    """A cache-thrashing phase that degrades when caches are shared."""
    return WorkRequest(
        instructions=2.0e8,
        mem_fraction=0.47,
        flop_fraction=0.15,
        l1_miss_rate=0.22,
        l2_miss_rate_solo=0.35,
        working_set_mb=3.4,
        locality_exponent=3.2,
        prefetch_friendliness=0.82,
        bandwidth_sensitivity=1.2,
        serial_fraction=0.01,
        barriers=4,
    )


@pytest.fixture(scope="session")
def tiny_workload(compute_work, bandwidth_work):
    """A small two-phase workload for fast end-to-end tests."""
    return Workload(
        name="TINY",
        phases=(
            PhaseSpec("tiny.compute", compute_work),
            PhaseSpec("tiny.stream", bandwidth_work),
        ),
        timesteps=12,
        description="small synthetic workload for tests",
        scaling_class="synthetic",
    )


@pytest.fixture(scope="session")
def fast_options():
    """Reduced training effort used throughout the test suite."""
    return ANNTrainingOptions(
        hidden_layers=(10,),
        folds=4,
        training=TrainingConfig(max_epochs=80, patience=12, batch_size=16),
        samples_per_phase=2,
        seed=5,
    )


@pytest.fixture(scope="session")
def mini_training_workloads(suite):
    """A small subset of the suite used to train test predictors."""
    return [suite.get(name) for name in ("BT", "CG", "IS", "MG", "SP")]


@pytest.fixture(scope="session")
def trained_bundle(machine, mini_training_workloads, fast_options):
    """A predictor bundle trained once per test session (reduced effort)."""
    return train_predictor_bundle(
        machine, mini_training_workloads, options=fast_options
    )


@pytest.fixture(scope="session")
def sp_oracle(machine, suite):
    """Exhaustive oracle measurements for SP."""
    return measure_oracle(machine, suite.get("SP"))


@pytest.fixture(scope="session")
def is_oracle(machine, suite):
    """Exhaustive oracle measurements for IS."""
    return measure_oracle(machine, suite.get("IS"))


@pytest.fixture()
def runtime(machine):
    """A fresh OpenMP runtime per test (isolated RNG state)."""
    return OpenMPRuntime(machine, seed=123)
