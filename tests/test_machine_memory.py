"""Unit tests for the front-side-bus / memory contention model."""

from __future__ import annotations

import pytest

from repro.machine import MemoryModel, quad_core_xeon


@pytest.fixture(scope="module")
def memory():
    return MemoryModel(quad_core_xeon())


class TestCapacity:
    def test_raw_capacity_matches_topology(self, memory):
        assert memory.capacity_bytes_per_cycle() == pytest.approx(8.5 / 2.4)

    def test_snoop_penalty_reduces_capacity(self, memory):
        one = memory.effective_capacity_bytes_per_cycle(1)
        four = memory.effective_capacity_bytes_per_cycle(4)
        assert four < one
        assert four == pytest.approx(one * (1 - memory.snoop_penalty_per_requestor * 3))

    def test_capacity_floor_at_half(self, memory):
        assert memory.effective_capacity_bytes_per_cycle(100) == pytest.approx(
            0.5 * memory.capacity_bytes_per_cycle()
        )

    def test_unloaded_latency(self, memory):
        assert memory.unloaded_latency_cycles() == pytest.approx(95.0 * 2.4)


class TestLatencyStretch:
    def test_no_penalty_below_onset(self, memory):
        assert memory.latency_stretch(0.0) == pytest.approx(1.0)
        assert memory.latency_stretch(memory.contention_onset * 0.9) == pytest.approx(1.0)

    def test_stretch_grows_with_utilization(self, memory):
        low = memory.latency_stretch(0.5)
        high = memory.latency_stretch(0.9)
        assert high > low >= 1.0

    def test_stretch_is_capped(self, memory):
        assert memory.latency_stretch(0.999) <= memory.max_stretch * (
            1.0 + memory.row_conflict_penalty * 0.0 + 1e-9
        )

    def test_more_requestors_increase_stretch_at_same_utilization(self, memory):
        one = memory.latency_stretch(0.7, active_requestors=1)
        four = memory.latency_stretch(0.7, active_requestors=4)
        assert four > one

    def test_requestor_penalty_vanishes_at_zero_utilization(self, memory):
        assert memory.latency_stretch(0.0, active_requestors=4) == pytest.approx(1.0)

    def test_constructor_validation(self):
        topo = quad_core_xeon()
        with pytest.raises(ValueError):
            MemoryModel(topo, max_stretch=0.5)
        with pytest.raises(ValueError):
            MemoryModel(topo, contention_onset=1.5)
        with pytest.raises(ValueError):
            MemoryModel(topo, snoop_penalty_per_requestor=0.9)
        with pytest.raises(ValueError):
            MemoryModel(topo, row_conflict_penalty=-0.1)


class TestResolve:
    def test_zero_demand(self, memory):
        state = memory.resolve(0.0)
        assert state.utilization == 0.0
        assert state.latency_stretch == pytest.approx(1.0)
        assert state.transactions_per_cycle == 0.0

    def test_demand_below_capacity(self, memory):
        capacity = memory.effective_capacity_bytes_per_cycle(1)
        state = memory.resolve(capacity * 0.5)
        assert state.utilization == pytest.approx(0.5)

    def test_demand_above_capacity_clips_delivered_utilization(self, memory):
        capacity = memory.effective_capacity_bytes_per_cycle(2, None)
        state = memory.resolve(capacity * 2.0, active_requestors=2)
        assert state.utilization == pytest.approx(1.0)
        assert state.latency_stretch > 2.0

    def test_negative_demand_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.resolve(-1.0)

    def test_transactions_per_cycle_uses_line_size(self, memory):
        state = memory.resolve(1.28, line_bytes=64)
        assert state.transactions_per_cycle == pytest.approx(1.28 / 64 * 1.0 / 1.0, rel=1e-6)


class TestEffectiveLatency:
    def test_prefetch_hides_latency(self, memory):
        exposed = memory.effective_latency_cycles(0.0, prefetch_friendliness=0.0)
        hidden = memory.effective_latency_cycles(0.0, prefetch_friendliness=0.9)
        assert hidden < exposed

    def test_latency_grows_with_utilization(self, memory):
        low = memory.effective_latency_cycles(0.1, prefetch_friendliness=0.3)
        high = memory.effective_latency_cycles(0.95, prefetch_friendliness=0.3)
        assert high > low

    def test_accepts_bus_state(self, memory):
        state = memory.resolve(2.0)
        from_state = memory.effective_latency_cycles(state, prefetch_friendliness=0.3)
        from_util = memory.effective_latency_cycles(
            state.demand_bytes_per_cycle / state.capacity_bytes_per_cycle,
            prefetch_friendliness=0.3,
        )
        assert from_state == pytest.approx(from_util, rel=1e-6)
