"""Tests for the fleet layer: nodes, registries, the scheduler, memo sharing.

The cluster package's core guarantee is bit-reproducibility: the same
fleet + jobs + cap must yield an identical schedule across repeated calls
and across process restarts through the shared
:class:`~repro.store.MemoStore`.  These tests pin that guarantee along
with the registry semantics and the scheduler's structural invariants;
the randomized counterparts live in ``test_cluster_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    Fleet,
    FleetJob,
    FleetScheduler,
    Node,
    NodeRegistry,
    PowerCapInfeasibleError,
    jobs_from_workload,
)
from repro.machine import Machine, dual_socket_xeon
from repro.workloads import nas_suite


@pytest.fixture(scope="module")
def fleet_suite(machine):
    return nas_suite(machine=machine, names=["CG", "IS"], variability=0.0)


@pytest.fixture(scope="module")
def fleet_jobs(fleet_suite):
    return [job for w in fleet_suite for job in jobs_from_workload(w)]


def _make_fleet():
    return Fleet(
        [
            Node("alpha", Machine(noise_sigma=0.0)),
            Node("bravo", Machine(noise_sigma=0.0), straggler_factor=1.4),
            Node("charlie", Machine(topology=dual_socket_xeon(), noise_sigma=0.0)),
        ]
    )


class TestNodeRegistry:
    def test_register_lookup_and_sorted_iteration(self):
        registry = NodeRegistry()
        for name in ("zulu", "alpha", "mike"):
            registry.register(Node(name, Machine(noise_sigma=0.0)))
        assert registry.names() == ["alpha", "mike", "zulu"]
        assert [node.name for node in registry] == ["alpha", "mike", "zulu"]
        assert registry.get("mike").name == "mike"
        assert "zulu" in registry and "nope" not in registry

    def test_duplicate_registration_is_an_error(self):
        registry = NodeRegistry()
        registry.register(Node("alpha", Machine(noise_sigma=0.0)))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Node("alpha", Machine(noise_sigma=0.0)))

    def test_unknown_lookup_and_unregister_raise(self):
        registry = NodeRegistry()
        with pytest.raises(KeyError, match="no node 'ghost'"):
            registry.get("ghost")
        with pytest.raises(KeyError, match="no node 'ghost'"):
            registry.unregister("ghost")

    def test_unregister_returns_the_node(self):
        registry = NodeRegistry()
        node = registry.register(Node("alpha", Machine(noise_sigma=0.0)))
        assert registry.unregister("alpha") is node
        assert len(registry) == 0


class TestNode:
    def test_name_and_straggler_validation(self):
        with pytest.raises(ValueError, match="non-empty string name"):
            Node("", Machine(noise_sigma=0.0))
        with pytest.raises(ValueError, match="straggler_factor"):
            Node("slow", Machine(noise_sigma=0.0), straggler_factor=0.5)

    def test_kind_distinguishes_machine_parameterizations(self):
        quad = Node("a", Machine(noise_sigma=0.0))
        quad_twin = Node("b", Machine(noise_sigma=0.0))
        dual = Node("c", Machine(topology=dual_socket_xeon(), noise_sigma=0.0))
        assert quad.kind == quad_twin.kind
        assert quad.kind != dual.kind

    def test_sweep_requires_a_noise_free_machine(self, fleet_jobs):
        noisy = Node("noisy", Machine())
        with pytest.raises(ValueError, match="noise-free"):
            noisy.sweep([job.work for job in fleet_jobs[:1]])

    def test_straggler_inflates_time_not_power(self, fleet_jobs):
        works = [job.work for job in fleet_jobs[:2]]
        healthy = Node("h", Machine(noise_sigma=0.0)).sweep(works)
        slow = Node("s", Machine(noise_sigma=0.0), straggler_factor=1.5).sweep(works)
        assert slow.time_seconds == pytest.approx(1.5 * healthy.time_seconds)
        assert slow.power_watts == pytest.approx(healthy.power_watts)


class TestFleet:
    def test_membership_and_aggregates(self):
        fleet = _make_fleet()
        assert fleet.names() == ["alpha", "bravo", "charlie"]
        assert len(fleet.kinds()) == 2
        assert fleet.idle_power_watts() == pytest.approx(
            sum(node.idle_power_watts() for node in fleet)
        )
        removed = fleet.remove("bravo")
        assert removed.name == "bravo"
        assert "bravo" not in fleet
        fleet.add(removed)
        assert fleet.names() == ["alpha", "bravo", "charlie"]

    def test_attach_store_groups_by_machine_kind(self, tmp_path):
        fleet = _make_fleet()
        fleet.attach_store(tmp_path / "memo")
        # Two quad-core nodes share one store; the dual-socket box gets
        # its own (memo keys do not encode machine parameters).
        assert fleet.node("alpha").memo_store is fleet.node("bravo").memo_store
        assert fleet.node("alpha").memo_store is not fleet.node("charlie").memo_store
        # A late joiner of a known kind inherits the existing store.
        late = fleet.add(Node("delta", Machine(noise_sigma=0.0)))
        assert late.memo_store is fleet.node("alpha").memo_store


class TestFleetScheduler:
    def test_schedule_covers_every_job_exactly_once(self, fleet_jobs):
        schedule = FleetScheduler(_make_fleet()).schedule(fleet_jobs)
        assert len(schedule.decisions) == len(fleet_jobs)
        assert [d.job.name for d in schedule.decisions] == [
            j.name for j in fleet_jobs
        ]
        placed = [
            name
            for alloc in schedule.allocations.values()
            for name in alloc.job_names
        ]
        assert sorted(placed) == sorted(j.name for j in fleet_jobs)

    def test_repeat_call_is_bit_identical(self, fleet_jobs):
        scheduler = FleetScheduler(_make_fleet())
        first = scheduler.schedule(fleet_jobs, 420.0)
        second = scheduler.schedule(fleet_jobs, 420.0)
        assert first.to_dict() == second.to_dict()

    def test_fresh_fleet_is_bit_identical(self, fleet_jobs):
        """Two independently built fleets agree exactly (no hidden state)."""
        first = FleetScheduler(_make_fleet()).schedule(fleet_jobs, 420.0)
        second = FleetScheduler(_make_fleet()).schedule(fleet_jobs, 420.0)
        assert first.to_dict() == second.to_dict()

    def test_restart_through_shared_store_is_bit_identical(
        self, tmp_path, fleet_jobs
    ):
        """A rebuilt fleet seeded from the store re-decides identically,
        and answers from disk instead of re-simulating."""
        first_fleet = _make_fleet()
        first_fleet.attach_store(tmp_path / "memo")
        first = FleetScheduler(first_fleet).schedule(fleet_jobs, 420.0)

        second_fleet = _make_fleet()
        second_fleet.attach_store(tmp_path / "memo")
        second = FleetScheduler(second_fleet).schedule(fleet_jobs, 420.0)
        assert first.to_dict() == second.to_dict()
        for node in second_fleet:
            info = node.machine.execution_memo_info()
            assert info.misses == 0, (
                f"{node.name} re-simulated {info.misses} cells the store "
                f"should have served"
            )

    def test_infeasible_cap_raises_typed_error(self, fleet_jobs):
        scheduler = FleetScheduler(_make_fleet())
        floor = scheduler.schedule(fleet_jobs).min_feasible_watts
        with pytest.raises(PowerCapInfeasibleError) as excinfo:
            scheduler.schedule(fleet_jobs, floor - 1.0)
        assert excinfo.value.required_watts == pytest.approx(floor)
        assert excinfo.value.cap_watts == pytest.approx(floor - 1.0)

    def test_one_node_fleet_matches_single_machine_selection(self, fleet_jobs):
        """The degenerate fleet reproduces plain grid selection, bitwise."""
        schedule = FleetScheduler(
            Fleet([Node("solo", Machine(noise_sigma=0.0))])
        ).schedule(fleet_jobs)
        reference = Machine(noise_sigma=0.0)
        grid = reference.execute_grid(
            [j.work for j in fleet_jobs], reference.default_configurations()
        )
        best = grid.best("time_seconds")
        times = grid.metric("time_seconds")
        for row, (decision, config) in enumerate(zip(schedule.decisions, best)):
            assert decision.configuration == config.name
            assert decision.time_seconds == times[row, grid.index_of(config.name)]

    def test_empty_fleet_and_bad_jobs_are_rejected(self, fleet_jobs):
        with pytest.raises(ValueError, match="empty fleet"):
            FleetScheduler(Fleet()).schedule(fleet_jobs)
        with pytest.raises(ValueError, match="weight must be positive"):
            FleetJob(name="bad", work=fleet_jobs[0].work, weight=0.0)

    def test_empty_job_stream_idles_the_fleet(self):
        fleet = _make_fleet()
        schedule = FleetScheduler(fleet).schedule([])
        assert schedule.throughput == 0.0
        assert schedule.total_power_watts == pytest.approx(
            fleet.idle_power_watts()
        )
        assert all(alloc.idle for alloc in schedule.allocations.values())

    def test_jobs_from_workload_weights_follow_invocations(self, fleet_suite):
        workload = fleet_suite.get("CG")
        jobs = jobs_from_workload(workload)
        assert len(jobs) == len(workload.phases)
        for job, phase in zip(jobs, workload.phases):
            assert job.name == f"{workload.name}/{phase.name}"
            assert job.weight == pytest.approx(
                phase.invocations_per_timestep * workload.timesteps
            )
