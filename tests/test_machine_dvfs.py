"""Tests for the DVFS layer: P-states, frequency-aware execution and power."""

from __future__ import annotations

import pytest

from repro.machine import (
    CONFIG_1,
    CONFIG_2B,
    CONFIG_4,
    Configuration,
    CPUModel,
    CPIBreakdown,
    Machine,
    PState,
    PStateTable,
    configuration_by_name,
    default_pstate_table,
    dvfs_configurations,
    heterogeneous_label,
    heterogeneous_ladders,
    standard_configurations,
)


@pytest.fixture(scope="module")
def table():
    return default_pstate_table()


class TestPStateTable:
    def test_default_table_shape(self, table):
        assert len(table) == 3
        assert table.nominal.name == "P0"
        assert table.nominal.frequency_ghz == pytest.approx(2.4)
        assert table.frequencies_ghz() == sorted(
            table.frequencies_ghz(), reverse=True
        )

    def test_scales_relative_to_nominal(self, table):
        p2 = table.by_name("P2")
        assert p2.frequency_scale(table.nominal) == pytest.approx(1.6 / 2.4)
        assert p2.voltage_scale(table.nominal) < 1.0
        # Dynamic power scale f·V² drops faster than frequency alone.
        assert p2.dynamic_power_scale(table.nominal) < p2.frequency_scale(
            table.nominal
        )

    def test_lookup_by_frequency_label(self, table):
        assert table.by_frequency_label("1.6GHz").name == "P2"
        with pytest.raises(KeyError):
            table.by_frequency_label("3GHz")
        with pytest.raises(KeyError):
            table.by_name("P9")

    def test_validation(self):
        with pytest.raises(ValueError):
            PState(name="bad", frequency_ghz=0.0, voltage=1.0)
        with pytest.raises(ValueError):
            PState(name="bad", frequency_ghz=1.0, voltage=-1.0)
        with pytest.raises(ValueError):
            PStateTable(states=())
        ascending = (
            PState("P0", 1.6, 1.0),
            PState("P1", 2.4, 1.3),
        )
        with pytest.raises(ValueError):
            PStateTable(states=ascending)
        duplicate = (
            PState("P0", 2.4, 1.3),
            PState("P0", 2.0, 1.2),
        )
        with pytest.raises(ValueError):
            PStateTable(states=duplicate)


class TestDVFSConfigurations:
    def test_cross_product_size_and_names(self, table):
        configs = dvfs_configurations(standard_configurations(), table)
        assert len(configs) == 5 * len(table)
        names = [c.name for c in configs]
        # Nominal states keep the paper's plain labels.
        for plain in ("1", "2a", "2b", "3", "4"):
            assert plain in names
        assert "2b@1.6GHz" in names and "4@2GHz" in names
        assert len(set(names)) == len(names)

    def test_nominal_configs_carry_the_nominal_pstate(self, table):
        configs = {c.name: c for c in dvfs_configurations(pstate_table=table)}
        assert configs["4"].pstate == table.nominal
        assert configs["4@1.6GHz"].pstate == table.by_name("P2")
        assert configs["4"].base_name == configs["4@1.6GHz"].base_name == "4"

    def test_configuration_by_name_resolves_frequency_suffix(self, table):
        config = configuration_by_name("2b@1.6GHz", table)
        assert config.placement == CONFIG_2B.placement
        assert config.frequency_ghz == pytest.approx(1.6)
        # Plain names stay backward compatible (no pinned state).
        assert configuration_by_name("2b").pstate is None
        with pytest.raises(KeyError):
            configuration_by_name("2b@9GHz", table)
        with pytest.raises(KeyError):
            configuration_by_name("9@1.6GHz", table)

    def test_with_pstate_round_trip(self, table):
        pinned = CONFIG_4.with_pstate(table.by_name("P1"))
        assert pinned.name == "4@2GHz"
        repinned = pinned.with_pstate(table.nominal, nominal=True)
        assert repinned.name == "4"


class TestHeterogeneousConfigurations:
    """Per-core P-state vectors: naming, parsing round-trips, error paths."""

    def test_vector_names_round_trip(self, table):
        for name in (
            "4@2.4/2.4/1.6/1.6GHz",
            "4@2.4/1.6/1.6/1.6GHz",
            "2b@2.4/1.6GHz",
            "3@2/2/1.6GHz",
        ):
            config = configuration_by_name(name, table)
            assert config.is_heterogeneous
            assert config.name == name
            assert configuration_by_name(config.name, table) == config
            assert len(config.pstate_vector) == config.num_threads
            assert config.frequency_ghz is None  # no single clock
            assert config.frequencies_ghz() == tuple(
                p.frequency_ghz for p in config.pstate_vector
            )

    def test_all_equal_vector_collapses_to_homogeneous(self, table):
        assert configuration_by_name(
            "4@1.6/1.6/1.6/1.6GHz", table
        ) == configuration_by_name("4@1.6GHz", table)
        # ... and the all-nominal vector collapses to the plain paper label.
        nominal = configuration_by_name("4@2.4/2.4/2.4/2.4GHz", table)
        assert nominal.name == "4"
        assert not nominal.is_heterogeneous

    def test_wrong_vector_length_rejected(self, table):
        with pytest.raises(ValueError, match="thread"):
            configuration_by_name("2b@2.4/2.4/1.6GHz", table)
        with pytest.raises(ValueError, match="thread"):
            configuration_by_name("4@2.4/1.6GHz", table)
        with pytest.raises(ValueError, match="thread"):
            CONFIG_4.with_pstate_vector((table.nominal,) * 3)

    def test_unknown_frequency_rejected(self, table):
        with pytest.raises(KeyError):
            configuration_by_name("4@2.4/2.4/2.4/3.1GHz", table)

    def test_malformed_separators_rejected(self, table):
        for bad in (
            "4@2.4//1.6/1.6GHz",
            "4@2.4/2.4/1.6/1.6",
            "4@2.4/2.4/1.6/GHz",
            "4@/2.4/2.4/1.6GHz",
            "4@2.4/2.4/1.6/abcGHz",
        ):
            with pytest.raises(ValueError):
                configuration_by_name(bad, table)

    def test_constructor_invariants(self, table):
        placement = CONFIG_2B.placement
        with pytest.raises(ValueError, match="not both"):
            Configuration(
                "bad",
                placement,
                pstate=table.nominal,
                pstate_vector=(table.nominal, table.by_name("P2")),
            )
        with pytest.raises(ValueError, match="one P-state per active core"):
            Configuration("bad", placement, pstate_vector=(table.nominal,))
        # Direct construction canonicalizes the degenerate vector too.
        degenerate = Configuration(
            "2b@1.6GHz", placement, pstate_vector=(table.by_name("P2"),) * 2
        )
        assert degenerate.pstate_vector is None
        assert degenerate.pstate == table.by_name("P2")

    def test_heterogeneous_label_formats_vectors(self, table):
        assert (
            heterogeneous_label((table.nominal, table.by_name("P2")))
            == "2.4/1.6GHz"
        )

    def test_ladder_generator_is_bounded_and_master_boosted(self, table):
        ladders = heterogeneous_ladders(CONFIG_4, table)
        # (n - 1) splits x C(|P|, 2) ordered pairs = 3 x 3 on the quad.
        assert len(ladders) == 9
        assert len({c.name for c in ladders}) == 9
        for config in ladders:
            frequencies = config.frequencies_ghz()
            # Non-increasing: the master (thread-0) core is never the slow one.
            assert list(frequencies) == sorted(frequencies, reverse=True)
            assert len(set(frequencies)) == 2
        assert heterogeneous_ladders(CONFIG_1, table) == []

    def test_cross_product_with_ladders(self, table):
        homogeneous = dvfs_configurations(standard_configurations(), table)
        enlarged = dvfs_configurations(
            standard_configurations(), table, include_heterogeneous=True
        )
        assert {c.name for c in homogeneous} <= {c.name for c in enlarged}
        hetero = [c for c in enlarged if c.is_heterogeneous]
        # 2-thread placements contribute 3 ladders each, 3 threads 6, 4
        # threads 9; the single-thread placement none.
        assert len(hetero) == 3 + 3 + 6 + 9
        assert len({c.name for c in enlarged}) == len(enlarged)


class TestHeterogeneousExecution:
    """Execution semantics of per-core P-state vectors."""

    def test_master_clock_is_reported(self, machine, compute_work):
        table = machine.pstate_table
        config = configuration_by_name("4@2.4/2.4/1.6/1.6GHz", table)
        result = machine.execute(compute_work, config, apply_noise=False)
        assert result.frequency_ghz == pytest.approx(2.4)
        assert result.pstate is None
        assert result.pstates == config.pstate_vector

    def test_vector_argument_overrides_configuration(self, machine, compute_work):
        table = machine.pstate_table
        vector = (table.nominal, table.nominal, table.by_name("P2"), table.by_name("P2"))
        result = machine.execute(
            compute_work, CONFIG_4.placement, apply_noise=False, pstate=vector
        )
        assert result.pstates == vector
        with pytest.raises(ValueError, match="thread"):
            machine.execute(
                compute_work, CONFIG_4.placement, apply_noise=False,
                pstate=(table.nominal,) * 3,
            )

    def test_ladder_power_sits_between_the_uniform_states(
        self, machine, compute_work
    ):
        table = machine.pstate_table
        hi = machine.execute(
            compute_work, configuration_by_name("4", table), apply_noise=False
        )
        lo = machine.execute(
            compute_work, configuration_by_name("4@1.6GHz", table), apply_noise=False
        )
        mixed = machine.execute(
            compute_work,
            configuration_by_name("4@2.4/2.4/1.6/1.6GHz", table),
            apply_noise=False,
        )
        assert lo.power_watts < mixed.power_watts < hi.power_watts
        # The slow block bounds the parallel portion: a ladder is never
        # faster than running everything at the fast state.
        assert mixed.time_seconds >= hi.time_seconds


class TestFrequencyAwareExecution:
    def test_nominal_pstate_matches_plain_placement(self, machine, compute_work):
        plain = machine.execute(compute_work, CONFIG_4.placement, apply_noise=False)
        table = machine.pstate_table
        pinned = machine.execute(
            compute_work,
            CONFIG_4.with_pstate(table.nominal, nominal=True),
            apply_noise=False,
        )
        assert pinned.time_seconds == pytest.approx(plain.time_seconds, rel=1e-12)
        assert pinned.power_watts == pytest.approx(plain.power_watts, rel=1e-12)
        assert plain.frequency_ghz == pytest.approx(2.4)

    def test_compute_bound_time_scales_with_frequency(self, machine, compute_work):
        table = machine.pstate_table
        times = {}
        for pstate in table:
            result = machine.execute(
                compute_work, CONFIG_4.placement, apply_noise=False, pstate=pstate
            )
            times[pstate.name] = result.time_seconds
            assert result.pstate == pstate
            assert result.frequency_ghz == pytest.approx(pstate.frequency_ghz)
        assert times["P0"] < times["P1"] < times["P2"]
        # A compute-bound phase loses nearly the full frequency ratio.
        assert times["P2"] / times["P0"] > 1.25

    def test_memory_bound_time_is_frequency_insensitive(
        self, machine, compute_work, bandwidth_work
    ):
        table = machine.pstate_table
        p0, p2 = table.nominal, table.by_name("P2")

        def slowdown(work):
            t_hi = machine.execute(work, CONFIG_4.placement, apply_noise=False, pstate=p0)
            t_lo = machine.execute(work, CONFIG_4.placement, apply_noise=False, pstate=p2)
            return t_lo.time_seconds / t_hi.time_seconds

        assert slowdown(bandwidth_work) < slowdown(compute_work)
        # Bandwidth-bound work barely notices the lower clock.
        assert slowdown(bandwidth_work) < 1.08

    def test_power_drops_at_lower_pstates(self, machine, compute_work):
        table = machine.pstate_table
        powers = [
            machine.execute(
                compute_work, CONFIG_4.placement, apply_noise=False, pstate=p
            ).power_watts
            for p in table
        ]
        assert powers[0] > powers[1] > powers[2]
        # The platform floor is unaffected, so the drop is bounded.
        assert powers[2] > machine.idle_power_watts()

    def test_ipc_rises_as_frequency_drops(self, machine, bandwidth_work):
        # IPC is per-cycle: stalls cost fewer cycles at a lower clock, so
        # raw IPC is NOT a valid cross-frequency selection criterion.
        table = machine.pstate_table
        ipcs = [
            machine.execute(
                bandwidth_work, CONFIG_4.placement, apply_noise=False, pstate=p
            ).ipc
            for p in table
        ]
        assert ipcs[0] < ipcs[1] < ipcs[2]

    def test_runtime_honours_directive_pstate(self, machine, tiny_workload):
        from repro.openmp import OpenMPRuntime, PhaseDirective

        runtime = OpenMPRuntime(machine, seed=3)
        region = runtime.register_regions(tiny_workload)[0]
        p2 = machine.pstate_table.by_name("P2")
        nominal = runtime.execute_region(
            region, 0, PhaseDirective(configuration=CONFIG_4)
        )
        throttled = runtime.execute_region(
            region, 0, PhaseDirective(configuration=CONFIG_4, pstate=p2)
        )
        assert throttled.result.frequency_ghz == pytest.approx(1.6)
        assert throttled.result.power_watts < nominal.result.power_watts


class TestCPUFrequencyRescale:
    def test_memory_component_scales_linearly(self):
        bd = CPIBreakdown(base=0.5, l1_miss=0.1, l2_miss=0.6, branch=0.05)
        scaled = CPUModel.rescale_breakdown(bd, 1.6 / 2.4)
        assert scaled.base == bd.base
        assert scaled.l1_miss == bd.l1_miss
        assert scaled.branch == bd.branch
        assert scaled.l2_miss == pytest.approx(0.6 * 1.6 / 2.4)
        assert scaled.total < bd.total

    def test_rejects_nonpositive_ratio(self):
        bd = CPIBreakdown(base=0.5, l1_miss=0.1, l2_miss=0.6, branch=0.05)
        with pytest.raises(ValueError):
            CPUModel.rescale_breakdown(bd, 0.0)
