"""Unit tests for the phase work characterization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import WorkRequest


class TestWorkRequestValidation:
    def test_defaults_are_valid(self):
        work = WorkRequest(instructions=1e8)
        assert work.instructions == 1e8

    def test_rejects_non_positive_instructions(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=0)
        with pytest.raises(ValueError):
            WorkRequest(instructions=-5)

    @pytest.mark.parametrize(
        "field",
        [
            "mem_fraction",
            "flop_fraction",
            "branch_fraction",
            "l1_miss_rate",
            "l2_miss_rate_solo",
            "sharing_fraction",
            "serial_fraction",
            "prefetch_friendliness",
        ],
    )
    def test_fraction_fields_must_be_in_unit_interval(self, field):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, **{field: 1.5})
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, **{field: -0.1})

    def test_rejects_bad_working_set(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, working_set_mb=0.0)

    def test_rejects_negative_locality(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, locality_exponent=-1.0)

    def test_rejects_imbalance_below_one(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, load_imbalance=0.9)

    def test_rejects_negative_barriers(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, barriers=-1)

    def test_rejects_non_positive_base_cpi(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8, base_cpi=0.0)


class TestWorkRequestDerived:
    def test_memory_flop_branch_instruction_counts(self):
        work = WorkRequest(
            instructions=1e9, mem_fraction=0.4, flop_fraction=0.3, branch_fraction=0.1
        )
        assert work.memory_instructions == pytest.approx(4e8)
        assert work.flop_instructions == pytest.approx(3e8)
        assert work.branch_instructions == pytest.approx(1e8)

    def test_scaled_multiplies_instructions_only(self):
        work = WorkRequest(instructions=1e8, mem_fraction=0.4)
        scaled = work.scaled(2.5)
        assert scaled.instructions == pytest.approx(2.5e8)
        assert scaled.mem_fraction == work.mem_fraction

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            WorkRequest(instructions=1e8).scaled(0.0)

    def test_with_noise_zero_sigma_returns_same_object(self):
        work = WorkRequest(instructions=1e8)
        rng = np.random.default_rng(0)
        assert work.with_noise(rng, 0.0) is work

    def test_with_noise_changes_instructions_within_bounds(self):
        work = WorkRequest(instructions=1e8)
        rng = np.random.default_rng(0)
        noisy = work.with_noise(rng, 0.05)
        assert noisy.instructions != work.instructions
        assert 0.2 * 1e8 <= noisy.instructions <= 2.0 * 1e8

    def test_feature_dict_round_trips_values(self):
        work = WorkRequest(instructions=1e8, working_set_mb=3.3, barriers=7)
        features = work.feature_dict()
        assert features["instructions"] == pytest.approx(1e8)
        assert features["working_set_mb"] == pytest.approx(3.3)
        assert features["barriers"] == pytest.approx(7.0)
        assert len(features) == 16

    def test_frozen(self):
        work = WorkRequest(instructions=1e8)
        with pytest.raises(Exception):
            work.instructions = 5.0  # type: ignore[misc]
