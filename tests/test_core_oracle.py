"""Tests for the exhaustive oracle measurements."""

from __future__ import annotations

import pytest

from repro.core import measure_oracle


class TestOracleTable:
    def test_measures_every_phase_and_configuration(self, sp_oracle, suite):
        sp = suite.get("SP")
        assert sp_oracle.phase_names() == sp.phase_names()
        assert sp_oracle.configuration_names() == ["1", "2a", "2b", "3", "4"]
        for phase in sp_oracle.phase_names():
            for config in sp_oracle.configuration_names():
                measurement = sp_oracle.measurement(phase, config)
                assert measurement.time_seconds > 0
                assert measurement.ipc > 0
                assert measurement.energy_joules == pytest.approx(
                    measurement.power_watts * measurement.time_seconds
                )

    def test_unknown_phase_or_configuration_raises(self, sp_oracle):
        with pytest.raises(KeyError):
            sp_oracle.measurement("nope", "4")
        with pytest.raises(KeyError):
            sp_oracle.measurement(sp_oracle.phase_names()[0], "9")

    def test_phase_metric_returns_all_configurations(self, sp_oracle):
        values = sp_oracle.phase_metric(sp_oracle.phase_names()[0], "time_seconds")
        assert set(values) == {"1", "2a", "2b", "3", "4"}

    def test_best_configuration_minimizes_time(self, sp_oracle):
        phase = sp_oracle.phase_names()[0]
        best = sp_oracle.best_configuration_for_phase(phase)
        times = sp_oracle.phase_metric(phase, "time_seconds")
        assert times[best] == min(times.values())

    def test_phase_optimal_covers_every_phase(self, sp_oracle):
        assignment = sp_oracle.phase_optimal_configurations()
        assert set(assignment) == set(sp_oracle.phase_names())

    def test_application_time_scales_with_timesteps(self, machine, suite):
        sp = suite.get("SP")
        oracle_full = measure_oracle(machine, sp)
        oracle_short = measure_oracle(machine, sp.with_timesteps(10))
        ratio = oracle_full.application_time_seconds("4") / oracle_short.application_time_seconds("4")
        assert ratio == pytest.approx(sp.timesteps / 10, rel=1e-6)

    def test_application_metrics_consistency(self, sp_oracle):
        metrics = sp_oracle.application_metrics("2b")
        assert metrics["power_watts"] == pytest.approx(
            metrics["energy_joules"] / metrics["time_seconds"]
        )
        assert metrics["ed2"] == pytest.approx(
            metrics["energy_joules"] * metrics["time_seconds"] ** 2
        )

    def test_global_optimal_is_a_valid_configuration(self, sp_oracle):
        best = sp_oracle.global_optimal_configuration()
        assert best in sp_oracle.configuration_names()
        times = {
            c: sp_oracle.application_time_seconds(c)
            for c in sp_oracle.configuration_names()
        }
        assert times[best] == min(times.values())

    def test_phase_optimal_beats_or_matches_global_optimal(self, sp_oracle):
        phase_optimal = sp_oracle.phase_optimal_application_metrics()
        global_best = sp_oracle.global_optimal_configuration()
        global_time = sp_oracle.application_time_seconds(global_best)
        assert phase_optimal["time_seconds"] <= global_time * (1 + 1e-9)

    def test_is_benchmark_prefers_2b_globally(self, is_oracle):
        assert is_oracle.global_optimal_configuration() == "2b"

    def test_phase_ipc_table_shape(self, sp_oracle):
        table = sp_oracle.phase_ipc_table()
        assert len(table) == len(sp_oracle.phase_names())
        assert all(len(row) == 5 for row in table.values())

    def test_energy_metric_selection(self, is_oracle):
        best_energy = is_oracle.global_optimal_configuration(metric="energy_joules")
        energies = {
            c: is_oracle.application_energy_joules(c)
            for c in is_oracle.configuration_names()
        }
        assert energies[best_energy] == min(energies.values())
