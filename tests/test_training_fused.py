"""Tests of the fused all-workloads training grid.

``collect_training_dataset`` used to issue one ``execute_grid`` launch per
workload; it now flattens every phase of every workload into a single grid
and recovers per-workload slices by a running row index.  These tests pin
the two contracts that fusion must keep: the produced dataset is
bit-identical to the old per-workload loop (the rng draw order is
row-major either way), and exactly ONE kernel launch happens regardless of
how many workloads are passed — including the DVFS and heterogeneous
target spaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FULL_EVENT_SET, collect_training_dataset
from repro.core.training import _noisy_rates
from repro.machine import (
    CONFIG_4,
    Configuration,
    Machine,
    dvfs_configurations,
    standard_configurations,
)
from repro.workloads import nas_suite


@pytest.fixture(scope="module")
def suite():
    return nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)


def _reference_dataset(
    machine,
    workloads,
    samples_per_phase=2,
    measurement_noise=0.10,
    seed=7,
    pstate_table=None,
    include_heterogeneous=False,
):
    """Replica of the pre-fusion loop: one ``execute_grid`` per workload.

    Mirrors the old implementation's candidate/target/sample-column setup so
    the only difference from the production path is the launch granularity.
    Returns ``(samples, grid_calls)`` where each sample is a plain tuple.
    """
    event_set = FULL_EVENT_SET
    rng = np.random.default_rng(seed)
    base_configs = standard_configurations(machine.topology)
    if pstate_table is not None:
        candidates = dvfs_configurations(
            base_configs, pstate_table, include_heterogeneous=include_heterogeneous
        )
        target_names = tuple(c.name for c in candidates)
    else:
        candidates = base_configs
        target_names = ("1", "2a", "2b", "3")
    all_configs = {c.name: c for c in candidates}
    target_configs = [all_configs[name] for name in target_names]
    bare_sample = Configuration(CONFIG_4.name, CONFIG_4.placement)
    sample_column = next(
        (
            i
            for i, c in enumerate(target_configs)
            if machine.shares_memo_cell(c, bare_sample)
        ),
        None,
    )
    if sample_column is None:
        grid_configs = target_configs + [bare_sample]
        sample_column = len(target_configs)
    else:
        grid_configs = target_configs

    before = machine.grid_calls
    samples = []
    for workload in workloads:
        works = [phase.work for phase in workload.phases]
        grid = machine.execute_grid(works, grid_configs)
        for row, phase in enumerate(workload.phases):
            targets = {
                name: float(ipc) for name, ipc in zip(target_names, grid.ipc[row])
            }
            sample_result = grid.result(row, sample_column)
            for _ in range(samples_per_phase):
                rates = _noisy_rates(
                    sample_result.event_counts,
                    sample_result.cycles,
                    event_set.events,
                    rng,
                    measurement_noise,
                )
                ipc_noise = 1.0
                if measurement_noise > 0:
                    ipc_noise = float(
                        np.clip(
                            1.0 + rng.normal(0.0, measurement_noise * 0.4), 0.8, 1.2
                        )
                    )
                features = (sample_result.ipc * ipc_noise,) + tuple(
                    rates[e] for e in event_set.events
                )
                samples.append(
                    (f"{workload.name}:{phase.name}", features, targets)
                )
    return samples, machine.grid_calls - before


def _assert_bit_identical(dataset, reference_samples):
    assert len(dataset.samples) == len(reference_samples)
    for sample, (phase_id, features, targets) in zip(
        dataset.samples, reference_samples
    ):
        assert sample.phase_id == phase_id
        assert sample.features == features  # exact, not approx
        assert sample.targets == targets


class TestFusedTrainingGrid:
    def test_fused_dataset_is_bit_identical_to_per_workload_loop(self, suite):
        workloads = [suite.get("CG"), suite.get("MG"), suite.get("IS")]
        reference, ref_calls = _reference_dataset(
            Machine(noise_sigma=0.0), workloads
        )
        assert ref_calls == len(workloads)  # the old cost: one per workload

        machine = Machine(noise_sigma=0.0)
        dataset = collect_training_dataset(
            machine,
            workloads,
            samples_per_phase=2,
            measurement_noise=0.10,
            seed=7,
        )
        assert machine.grid_calls == 1  # the new cost: one, total
        _assert_bit_identical(dataset, reference)

    def test_fused_dvfs_dataset_is_bit_identical(self, suite):
        machine = Machine(noise_sigma=0.0)
        workloads = [suite.get("FT"), suite.get("IS")]
        reference, _ = _reference_dataset(
            Machine(noise_sigma=0.0),
            workloads,
            seed=11,
            pstate_table=machine.pstate_table,
        )
        dataset = collect_training_dataset(
            machine,
            workloads,
            samples_per_phase=2,
            measurement_noise=0.10,
            seed=11,
            pstate_table=machine.pstate_table,
        )
        assert machine.grid_calls == 1
        _assert_bit_identical(dataset, reference)

    def test_fused_heterogeneous_dataset_is_bit_identical(self, suite):
        machine = Machine(noise_sigma=0.0)
        workloads = [suite.get("MG"), suite.get("CG")]
        reference, _ = _reference_dataset(
            Machine(noise_sigma=0.0),
            workloads,
            seed=3,
            pstate_table=machine.pstate_table,
            include_heterogeneous=True,
        )
        dataset = collect_training_dataset(
            machine,
            workloads,
            samples_per_phase=2,
            measurement_noise=0.10,
            seed=3,
            pstate_table=machine.pstate_table,
            include_heterogeneous=True,
        )
        assert machine.grid_calls == 1
        _assert_bit_identical(dataset, reference)
        # The heterogeneous ladders really are part of the target space.
        assert any("+" in name or "/" in name for name in dataset.target_configurations) or len(
            dataset.target_configurations
        ) > 15

    def test_single_workload_still_one_launch(self, suite):
        machine = Machine(noise_sigma=0.0)
        collect_training_dataset(
            machine, [suite.get("CG")], samples_per_phase=1
        )
        assert machine.grid_calls == 1

    def test_empty_workload_list_skips_the_grid(self):
        machine = Machine(noise_sigma=0.0)
        dataset = collect_training_dataset(machine, [], samples_per_phase=1)
        assert len(dataset) == 0
        assert machine.grid_calls == 0

    def test_fusion_shares_memo_cells_across_workloads(self, suite):
        """One launch, one memo population — a second collection over any
        subset of the same workloads is served entirely from the memo."""
        machine = Machine(noise_sigma=0.0)
        collect_training_dataset(
            machine, [suite.get("CG"), suite.get("MG")], samples_per_phase=1
        )
        info = machine.execution_memo_info()
        collect_training_dataset(machine, [suite.get("MG")], samples_per_phase=1)
        after = machine.execution_memo_info()
        assert after.misses == info.misses  # nothing new simulated
        assert after.hits > info.hits
