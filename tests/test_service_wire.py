"""Tests for the JSON-lines wire protocol's malformed-input handling.

``parse_request_line`` is the single choke point every TCP byte passes
through; these tests pin its rejection paths (oversized lines, junk
bytes, non-object JSON, unknown kinds, missing fields) and the
connection-level behavior when a line overruns even the stream reader's
enlarged framing limit: one structured ``bad_request`` answer, then a
clean close — never a silent drop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    MAX_REQUEST_LINE_BYTES,
    AdaptationDecision,
    AdaptationServer,
    DecisionHandler,
    GridProbeRequest,
    PhaseSampleRequest,
    parse_request_line,
)


class TestParseRequestLine:
    def test_oversized_line_is_rejected_with_the_limit_in_the_message(self):
        line = b'{"pad": "' + b"x" * MAX_REQUEST_LINE_BYTES + b'"}'
        with pytest.raises(ValueError, match=str(MAX_REQUEST_LINE_BYTES)):
            parse_request_line(line)

    def test_a_line_at_the_limit_is_still_parsed(self):
        payload = {"client_id": "c", "phase": "p", "ipc_sample": 1.0, "rates": {}}
        line = json.dumps(payload).encode()
        line += b" " * (MAX_REQUEST_LINE_BYTES - len(line))
        request = parse_request_line(line)
        assert isinstance(request, PhaseSampleRequest)

    def test_junk_bytes_raise_value_error(self):
        with pytest.raises(ValueError):
            parse_request_line(b"not json at all\n")

    def test_non_object_json_is_rejected(self):
        with pytest.raises(ValueError, match="must be a JSON object, got list"):
            parse_request_line(b"[1, 2, 3]")
        with pytest.raises(ValueError, match="must be a JSON object, got int"):
            parse_request_line(b"42")

    def test_unknown_kind_is_rejected(self):
        payload = {"kind": "warp_drive", "client_id": "c", "phase": "p"}
        with pytest.raises(ValueError, match="unknown request kind 'warp_drive'"):
            parse_request_line(json.dumps(payload).encode())

    def test_missing_required_fields_raise(self):
        # phase_sample without its sample; grid_probe without its work.
        with pytest.raises(KeyError):
            parse_request_line(b'{"client_id": "c", "phase": "p"}')
        with pytest.raises(KeyError):
            parse_request_line(
                b'{"kind": "grid_probe", "client_id": "c", "phase": "p"}'
            )

    def test_kind_defaults_to_phase_sample(self):
        payload = {"client_id": "c", "phase": "p", "ipc_sample": 1.2, "rates": {}}
        request = parse_request_line(json.dumps(payload).encode())
        assert isinstance(request, PhaseSampleRequest)
        assert request.ipc_sample == 1.2

    def test_valid_requests_round_trip(self):
        sample = PhaseSampleRequest(
            client_id="c", phase="p", ipc_sample=1.5, rates={"l2": 0.01}
        )
        parsed = parse_request_line(
            json.dumps(dict(sample.to_payload(), kind="phase_sample")).encode()
        )
        assert parsed == sample


class _EchoHandler(DecisionHandler):
    def handle_batch(self, requests):
        return [
            AdaptationDecision(
                client_id=r.client_id, phase=r.phase, configuration="4"
            )
            for r in requests
        ]


class TestOversizedLinesOverTCP:
    def test_oversized_but_frameable_line_answers_bad_request(self):
        """~70 KB exceeds the protocol limit but not the reader's framing
        limit: the guard in parse_request_line answers structurally and the
        connection keeps serving."""

        async def main():
            server = AdaptationServer(_EchoHandler())
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=4 * MAX_REQUEST_LINE_BYTES
                )
                writer.write(
                    b'{"pad": "' + b"x" * (70 * 1024) + b'"}\n'
                )
                await writer.drain()
                first = json.loads(await reader.readline())
                # The connection is still alive for well-formed requests.
                writer.write(
                    json.dumps(
                        {
                            "client_id": "c",
                            "phase": "p",
                            "ipc_sample": 1.0,
                            "rates": {},
                        }
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                second = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        first, second = outcome
        assert first["ok"] is False
        assert first["error"] == "bad_request"
        assert "exceeds" in first["detail"]
        assert second["ok"] is True
        assert second["decision"]["configuration"] == "4"

    def test_unframeable_line_answers_once_then_closes(self):
        """>128 KB overruns even the enlarged StreamReader limit: framing
        is unrecoverable, so the server answers one bad_request and closes."""

        async def main():
            server = AdaptationServer(_EchoHandler())
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=8 * MAX_REQUEST_LINE_BYTES
                )
                writer.write(b"x" * (3 * MAX_REQUEST_LINE_BYTES) + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                eof = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return response, eof
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        response, eof = outcome
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "too long" in response["detail"]
        assert eof == b""  # server closed after the one answer
