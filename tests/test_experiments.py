"""Tests for the experiment drivers (figure reproduction pipeline).

The drivers are exercised on a reduced context (a four-benchmark subset and
low training effort) so the whole pipeline — scalability studies, oracle
tables, leave-one-out prediction and the policy comparison — runs in seconds
while still covering the real code paths.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ABLATIONS,
    EXPERIMENTS,
    ExperimentContext,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig_dvfs,
    run_scaling_summary,
)
from repro.experiments.runner import run_all
from repro.machine import Machine
from repro.workloads import nas_suite


@pytest.fixture(scope="module")
def ctx(machine):
    suite = nas_suite(
        machine=machine, names=["BT", "CG", "IS", "SP"], variability=0.0
    )
    return ExperimentContext(machine=Machine(), suite=suite, fast=True, seed=11)


class TestFig1(object):
    def test_times_and_speedups_present_for_every_benchmark(self, ctx):
        figure = run_fig1(ctx)
        times = figure.data["times"]
        assert set(times) == {"BT", "CG", "IS", "SP"}
        for per_config in times.values():
            assert set(per_config) == {"1", "2a", "2b", "3", "4"}
        assert figure.data["best_configuration"]["IS"] == "2b"
        assert "Execution time" in figure.text

    def test_scalable_benchmark_speedup_shape(self, ctx):
        figure = run_fig1(ctx)
        speedups = figure.data["speedups"]["BT"]
        assert speedups["4"] > 2.0
        assert speedups["4"] > speedups["2b"] > speedups["1"]


class TestFig2(object):
    def test_phase_ipc_table_shape(self, ctx):
        figure = run_fig2(ctx, benchmark="SP")
        ipc = figure.data["ipc"]
        assert len(ipc) == 11
        low, high = figure.data["max_ipc_range"]
        assert low < 1.0 and high > 3.0

    def test_multiple_best_configurations_across_phases(self, ctx):
        figure = run_fig2(ctx, benchmark="SP")
        assert len(figure.data["distinct_best_configurations"]) >= 2


class TestFig3(object):
    def test_power_energy_tables_and_summary_statistics(self, ctx):
        figure = run_fig3(ctx)
        assert set(figure.data["power"]) == {"BT", "CG", "IS", "SP"}
        assert 0.0 < figure.data["avg_power_increase_4_vs_1"] < 0.35
        assert figure.data["bt_power_ratio_4_vs_1"] > 1.05
        assert figure.data["bt_energy_ratio_4_vs_1"] < 0.75
        geo = figure.data["geomean_energy_normalized"]
        assert geo["4"] == pytest.approx(1.0)


class TestScalingSummary(object):
    def test_statistics_have_paper_shape(self, ctx):
        figure = run_scaling_summary(ctx)
        data = figure.data
        assert data["scalable_class_speedup_4"] > 2.0
        assert data["is_2b_over_2a"] > 1.3
        assert data["is_speedup_4_vs_1"] < 1.2
        assert 0.0 < data["avg_power_increase_4_vs_1"] < 0.35


class TestPredictionFigures(object):
    def test_fig6_error_distribution(self, ctx):
        figure = run_fig6(ctx)
        assert figure.data["num_predictions"] > 20
        assert 0.0 < figure.data["median_error"] < 0.35
        cdf = figure.data["cdf"]
        assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    def test_fig7_rank_histogram(self, ctx):
        figure = run_fig7(ctx)
        fractions = figure.data["rank_fractions"]
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert figure.data["top2_fraction"] > 0.6
        assert figure.data["worst_fraction"] < 0.2

    def test_prediction_records_are_cached(self, ctx):
        first = ctx.prediction_records()
        second = ctx.prediction_records()
        assert first is second


class TestFig8(object):
    def test_normalized_metrics_per_strategy(self, ctx):
        figure = run_fig8(ctx)
        normalized = figure.data["normalized"]
        for metric in ("time", "power", "energy", "ed2"):
            assert set(normalized[metric]) == {"BT", "CG", "IS", "SP", "AVG"}
            for bench, per_strategy in normalized[metric].items():
                assert per_strategy["4-cores"] == pytest.approx(1.0)
        averages = figure.data["averages"]
        # Adaptation should not lose time on average and should cut ED2.
        assert averages["time"]["prediction"] < 1.02
        assert averages["ed2"]["prediction"] < 1.0
        assert averages["ed2"]["phase-optimal"] <= averages["ed2"]["global-optimal"] + 1e-9

    def test_is_gains_most_in_ed2(self, ctx):
        figure = run_fig8(ctx)
        ed2 = figure.data["normalized"]["ed2"]
        assert ed2["IS"]["prediction"] < 0.75
        assert ed2["IS"]["phase-optimal"] < 0.7


@pytest.fixture(scope="module")
def dvfs_ctx(machine):
    """Full-suite context for the DVFS experiment (noise-free machine).

    The DVFS drivers train closed-form regression bundles, so the full
    eight-benchmark suite stays cheap; the noise-free machine makes the
    acceptance comparison deterministic.
    """
    suite = nas_suite(machine=machine, variability=0.0)
    return ExperimentContext(
        machine=Machine(noise_sigma=0.0), suite=suite, fast=True, seed=11
    )


class TestFigDVFS(object):
    def test_energy_aware_beats_time_optimal_on_ed2(self, dvfs_ctx):
        figure = run_fig_dvfs(dvfs_ctx)
        suite_names = [w.name for w in dvfs_ctx.suite]
        # Acceptance criterion: with the default P-state table the ED²
        # objective achieves lower ED² than the time-optimal prediction
        # policy on at least three NAS-like workloads.
        assert len(figure.data["ed2_wins"]) >= 3, figure.data["ed2_wins"]
        assert set(figure.data["ed2_wins"]) <= set(suite_names)
        averages = figure.data["averages"]
        assert (
            averages["ed2"]["energy-ed2"] <= averages["ed2"]["prediction"] * 1.005
        )
        assert averages["ed2"]["energy-ed2"] < 1.0

    def test_tables_cover_every_strategy_and_benchmark(self, dvfs_ctx):
        from repro.experiments import DVFS_STRATEGY_NAMES

        figure = run_fig_dvfs(dvfs_ctx)
        normalized = figure.data["normalized"]
        for metric in ("time", "power", "energy", "ed2"):
            rows = normalized[metric]
            assert set(rows) == {w.name for w in dvfs_ctx.suite} | {"AVG"}
            for row in rows.values():
                assert set(row) == set(DVFS_STRATEGY_NAMES)
        # The energy-aware decisions resolve inside the cross-product space.
        from repro.machine import configuration_by_name

        for decisions in figure.data["energy_ed2_decisions"].values():
            for name in decisions.values():
                configuration_by_name(name, dvfs_ctx.pstate_table)

    def test_dvfs_bundles_are_cached_on_the_context(self, dvfs_ctx):
        first = dvfs_ctx.dvfs_bundle_for_held_out("SP")
        assert dvfs_ctx.dvfs_bundle_for_held_out("SP") is first

    def test_heterogeneous_sweep_covers_the_suite(self, dvfs_ctx):
        from repro.experiments import run_heterogeneous_sweep
        from repro.machine import configuration_by_name

        sweep = run_heterogeneous_sweep(dvfs_ctx)
        assert set(sweep) == {w.name for w in dvfs_ctx.suite}
        for workload in dvfs_ctx.suite:
            row = sweep[workload.name]
            # The enlarged optimum can only improve on the homogeneous one.
            assert (
                row["phase_optimal_ed2"]
                <= row["phase_optimal_ed2_homogeneous"] * (1 + 1e-12)
            )
            assert 0.0 <= row["ed2_gain"] < 1.0
            assert set(row["phase_winners"]) == {
                p.name for p in workload.phases
            }
            # Winners resolve inside the enlarged configuration space.
            for name in row["phase_winners"].values():
                configuration_by_name(name, dvfs_ctx.pstate_table)
            assert 0 <= row["heterogeneous_wins"] <= len(workload.phases)


class TestFigCluster(object):
    def test_cap_sweep_and_scenario_shape(self, ctx):
        from repro.experiments import run_fig_cluster

        figure = run_fig_cluster(ctx)
        data = figure.data
        assert set(data["nodes"]) == {"xeon-a", "xeon-b", "dual-a"}
        sweep = data["cap_sweep"]
        assert len(sweep) == 6
        for row in sweep:
            assert row["total_power_watts"] <= row["cap_watts"] + 1e-9
        # Raising the cap never lowers fleet throughput.
        throughputs = [row["throughput"] for row in sweep]
        assert throughputs == sorted(throughputs)
        assert sweep[-1]["throughput"] == pytest.approx(
            data["unconstrained_throughput"]
        )
        # The failure/churn scenario lost no work and duplicated none.
        scenario = data["scenario"]
        assert scenario["every_job_completed_once"]
        assert scenario["jobs_completed"] == data["num_jobs"]
        assert any(r["failed_nodes"] == ["xeon-b"] for r in scenario["rounds"])


class TestRunner(object):
    def test_registry_contains_all_figures(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "sec3-summary",
            "fig6",
            "fig7",
            "fig8",
            "fig-dvfs",
            "fig-cluster",
        }
        assert len(ABLATIONS) == 6

    def test_manycore_extension_shape(self, ctx):
        from repro.experiments import run_manycore_extension

        figure = run_manycore_extension(ctx, benchmarks=["IS", "SP"])
        savings = figure.data["savings"]
        assert set(savings) == {"4-core (paper)", "8-core dual-socket", "16-core"}
        # The throttling opportunity on the larger parts is at least as large
        # as on the quad-core platform (the paper's future-work claim).
        assert (
            savings["8-core dual-socket"]["geomean"]
            >= savings["4-core (paper)"]["geomean"] - 0.02
        )
        # Search must cover more candidate configurations as cores grow.
        costs = figure.data["search_configurations"]
        assert costs["16-core"] > costs["8-core dual-socket"] > costs["4-core (paper)"]

    def test_run_all_selected_subset(self, ctx):
        figures = run_all(ctx, names=["fig1", "fig2"], verbose=False)
        assert set(figures) == {"fig1", "fig2"}

    def test_run_all_rejects_unknown_experiment(self, ctx):
        with pytest.raises(KeyError):
            run_all(ctx, names=["fig99"], verbose=False)
