"""Tests for the calibrated NAS-like benchmark models.

These tests pin the *shape* of the paper's Section III findings: which
benchmarks scale, which flatten, and which degrade, plus the calibration of
single-thread execution times.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.workloads import (
    NAS_BENCHMARK_NAMES,
    SCALING_CLASSES,
    build_benchmark,
    nas_suite,
    seconds_per_instruction,
)
from repro.workloads.nas import _BENCHMARK_SIZES


@pytest.fixture(scope="module")
def app_times(machine, suite, configurations):
    """Whole-application execution time per benchmark per configuration."""
    times = {}
    for workload in suite:
        per_config = {}
        for config in configurations:
            total = 0.0
            for phase in workload.phases:
                result = machine.execute(phase.work, config, apply_noise=False)
                total += result.time_seconds * phase.invocations_per_timestep
            per_config[config.name] = total * workload.timesteps
        times[workload.name] = per_config
    return times


class TestSuiteConstruction:
    def test_suite_contains_all_eight_benchmarks(self, suite):
        assert suite.names() == list(NAS_BENCHMARK_NAMES)

    def test_scaling_classes_assigned(self, suite):
        for workload in suite:
            assert workload.scaling_class == SCALING_CLASSES[workload.name]

    def test_sp_has_eleven_phases(self, suite):
        assert suite.get("SP").num_phases == 11

    def test_every_benchmark_has_multiple_phases(self, suite):
        for workload in suite:
            assert workload.num_phases >= 3

    def test_subset_selection(self):
        small = nas_suite(machine=Machine(noise_sigma=0.0), names=["IS", "MG"])
        assert small.names() == ["IS", "MG"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("XX")

    def test_build_benchmark_overrides(self, machine):
        workload = build_benchmark("IS", machine=machine, timesteps=5)
        assert workload.timesteps == 5


class TestCalibration:
    @pytest.mark.parametrize("name", NAS_BENCHMARK_NAMES)
    def test_single_thread_time_matches_target(self, app_times, name):
        target, _ = _BENCHMARK_SIZES[name]
        assert app_times[name]["1"] == pytest.approx(target, rel=0.05)

    def test_seconds_per_instruction_positive(self, machine, suite):
        work = suite.get("BT").phases[0].work
        assert seconds_per_instruction(work, machine) > 0


class TestScalingShape:
    """The paper's Section III taxonomy must hold on the simulator."""

    @pytest.mark.parametrize("name", ["BT", "FT", "LU-HP"])
    def test_scalable_class_gains_from_every_core(self, app_times, name):
        times = app_times[name]
        speedup_4 = times["1"] / times["4"]
        assert speedup_4 > 2.0
        # Four cores beat the best two-core configuration.
        assert times["4"] < min(times["2a"], times["2b"])

    @pytest.mark.parametrize("name", ["CG", "LU", "SP"])
    def test_flat_class_saturates_after_two_cores(self, app_times, name):
        times = app_times[name]
        best_two = min(times["2a"], times["2b"])
        # Using four cores changes execution time by less than 15% compared
        # with the best two-core configuration (the paper reports ~7%).
        assert abs(times["4"] - best_two) / best_two < 0.25
        # But two cores clearly beat one.
        assert times["1"] / best_two > 1.3

    @pytest.mark.parametrize("name", ["IS", "MG"])
    def test_degrading_class_is_best_on_two_loose_cores(self, app_times, name):
        times = app_times[name]
        assert min(times, key=times.get) == "2b"
        assert times["4"] > times["2b"] * 1.15

    def test_is_suffers_on_tightly_coupled_cores(self, app_times):
        times = app_times["IS"]
        # The paper reports a 2.04x gap between 2b and 2a for IS.
        assert times["2a"] / times["2b"] > 1.4

    def test_is_does_not_benefit_from_four_cores(self, app_times):
        times = app_times["IS"]
        assert times["4"] >= times["1"] * 0.95

    def test_bt_is_the_most_scalable_benchmark(self, app_times):
        speedups = {
            name: app_times[name]["1"] / app_times[name]["4"]
            for name in NAS_BENCHMARK_NAMES
        }
        assert max(speedups, key=speedups.get) in ("BT", "LU-HP")

    def test_suite_effective_scaling_stops_at_two_cores(self, app_times):
        """Averaged over the suite, most of the gain comes from two cores."""
        gain_two = []
        gain_four = []
        for name in NAS_BENCHMARK_NAMES:
            times = app_times[name]
            best_two = min(times["2a"], times["2b"])
            gain_two.append(times["1"] / best_two)
            gain_four.append(times["1"] / times["4"])
        avg_two = sum(gain_two) / len(gain_two)
        avg_four = sum(gain_four) / len(gain_four)
        assert avg_two > 1.5
        assert avg_four - avg_two < 0.45


class TestPhaseHeterogeneity:
    def test_sp_phases_prefer_different_configurations(self, machine, suite, configurations):
        best = set()
        for phase in suite.get("SP").phases:
            times = {
                c.name: machine.execute(phase.work, c, apply_noise=False).time_seconds
                for c in configurations
            }
            best.add(min(times, key=times.get))
        assert len(best) >= 2

    def test_sp_phase_ipc_range_is_wide(self, machine, suite, configurations):
        max_ipcs = []
        for phase in suite.get("SP").phases:
            ipcs = [
                machine.execute(phase.work, c, apply_noise=False).ipc
                for c in configurations
            ]
            max_ipcs.append(max(ipcs))
        assert min(max_ipcs) < 1.0
        assert max(max_ipcs) > 3.5
