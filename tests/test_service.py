"""Tests for the micro-batching adaptation service.

Covers the batching window semantics in both directions (size-triggered
dispatch beats the window; the window flushes undersized batches), the
bounded-queue backpressure contract (reject with retry-after, client shim
retries), and the central determinism guarantee: decisions served through
the batching path are identical to serial per-phase selection — the
prediction tier against direct :class:`ConfigurationSelector` calls, the
grid tier against a direct :meth:`Machine.execute_grid` launch.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core import ConfigurationSelector
from repro.machine import CONFIG_4, Machine, WorkRequest
from repro.service import (
    AdaptationClient,
    AdaptationDecision,
    AdaptationServer,
    DecisionHandler,
    GridHandler,
    GridProbeRequest,
    MicroBatcher,
    PhaseSampleRequest,
    PredictionHandler,
    ServiceMetrics,
    ServiceOverloadedError,
    ServiceStoppedError,
    TCPAdaptationClient,
    run_open_loop,
)


def _sample_for(machine, predictor, phase):
    """Noise-free sampled IPC and event rates for one phase."""
    result = machine.execute(phase.work, CONFIG_4.placement, apply_noise=False)
    rates = {
        event: result.event_counts.get(event, 0.0) / result.cycles
        for event in predictor.event_set.events
    }
    return result.ipc, rates


def _phase_requests(machine, bundle, phases):
    return [
        PhaseSampleRequest(
            client_id=f"client-{i}",
            phase=phase.name,
            ipc_sample=ipc,
            rates=rates,
        )
        for i, (phase, (ipc, rates)) in enumerate(
            (p, _sample_for(machine, bundle.full, p)) for p in phases
        )
    ]


class _EchoHandler(DecisionHandler):
    """Trivial handler recording the batch sizes it was dispatched."""

    def __init__(self):
        self.batch_sizes = []

    def handle_batch(self, requests):
        self.batch_sizes.append(len(requests))
        return [
            AdaptationDecision(
                client_id=r.client_id, phase=r.phase, configuration="4"
            )
            for r in requests
        ]


class _BlockingHandler(_EchoHandler):
    """Echo handler that parks in the worker thread until released."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()

    def handle_batch(self, requests):
        assert self.release.wait(timeout=10.0), "test never released the handler"
        return super().handle_batch(requests)


def _request(i):
    return PhaseSampleRequest(
        client_id=f"c{i}", phase=f"p{i}", ipc_sample=1.0, rates={"x": 0.1}
    )


class TestBatchingWindow:
    def test_full_batch_dispatches_before_the_window_expires(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=4, max_batch_window=5.0
            ) as server:
                start = time.perf_counter()
                await server.submit_many([_request(i) for i in range(4)])
                return handler.batch_sizes, time.perf_counter() - start

        sizes, elapsed = asyncio.run(main())
        # Size cap fired: one full batch, long before the 5 s window.
        assert sizes == [4]
        assert elapsed < 2.0

    def test_window_flushes_an_undersized_batch(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=64, max_batch_window=0.05
            ) as server:
                decisions = await server.submit_many([_request(i) for i in range(3)])
                return handler.batch_sizes, decisions

        sizes, decisions = asyncio.run(main())
        # Window fired: all three coalesced, none waited for a full batch.
        assert sizes == [3]
        assert [d.client_id for d in decisions] == ["c0", "c1", "c2"]

    def test_responses_preserve_request_order_across_batches(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=3, max_batch_window=0.01
            ) as server:
                return await server.submit_many([_request(i) for i in range(10)])

        decisions = asyncio.run(main())
        assert [d.client_id for d in decisions] == [f"c{i}" for i in range(10)]
        assert [d.phase for d in decisions] == [f"p{i}" for i in range(10)]

    def test_handler_errors_fail_only_their_own_batch(self):
        class _FlakyHandler(_EchoHandler):
            def handle_batch(self, requests):
                if any(r.client_id == "c1" for r in requests):
                    raise RuntimeError("poisoned batch")
                return super().handle_batch(requests)

        async def main():
            handler = _FlakyHandler()
            async with AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0
            ) as server:
                good = await server.submit(_request(0))
                with pytest.raises(RuntimeError, match="poisoned batch"):
                    await server.submit(_request(1))
                # The scheduler survived the failing batch.
                again = await server.submit(_request(2))
                return good, again

        good, again = asyncio.run(main())
        assert (good.client_id, again.client_id) == ("c0", "c2")


class TestBackpressure:
    def test_saturated_queue_rejects_with_retry_after(self):
        async def main():
            handler = _BlockingHandler()
            async with AdaptationServer(
                handler,
                max_batch_size=1,
                max_batch_window=0.0,
                max_queue_depth=2,
            ) as server:
                # Request 0 is taken by the scheduler and parks in the
                # handler; requests 1 and 2 then fill the queue to its bound.
                tasks = [asyncio.create_task(server.submit(_request(0)))]
                await asyncio.sleep(0.05)
                tasks += [
                    asyncio.create_task(server.submit(_request(i))) for i in (1, 2)
                ]
                await asyncio.sleep(0.05)
                assert server.batcher.queue_depth() == 2
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    await server.submit(_request(3))
                error = excinfo.value
                handler.release.set()
                await asyncio.gather(*tasks)
                return error, server.metrics()

        error, metrics = asyncio.run(main())
        assert error.queue_depth == 2
        assert error.max_queue_depth == 2
        assert error.retry_after > 0.0
        assert metrics["rejections"] == 1
        assert metrics["decisions"] == 3

    def test_client_retries_through_a_transient_overload(self):
        async def main():
            handler = _BlockingHandler()
            async with AdaptationServer(
                handler,
                max_batch_size=1,
                max_batch_window=0.0,
                max_queue_depth=1,
            ) as server:
                tasks = [asyncio.create_task(server.submit(_request(0)))]
                await asyncio.sleep(0.05)
                tasks.append(asyncio.create_task(server.submit(_request(1))))
                await asyncio.sleep(0.05)
                client = AdaptationClient(server, max_retries=200, backoff_cap=0.01)
                retried = asyncio.create_task(client.request(_request(9)))
                await asyncio.sleep(0.05)  # let it hit the full queue at least once
                handler.release.set()
                decision = await retried
                await asyncio.gather(*tasks)
                return client.retries, decision

        retries, decision = asyncio.run(main())
        assert retries > 0
        assert decision.client_id == "c9"

    def test_zero_retries_client_propagates_the_rejection(self):
        async def main():
            handler = _BlockingHandler()
            async with AdaptationServer(
                handler,
                max_batch_size=1,
                max_batch_window=0.0,
                max_queue_depth=1,
            ) as server:
                tasks = [asyncio.create_task(server.submit(_request(0)))]
                await asyncio.sleep(0.05)
                tasks.append(asyncio.create_task(server.submit(_request(1))))
                await asyncio.sleep(0.05)
                client = AdaptationClient(server, max_retries=0)
                with pytest.raises(ServiceOverloadedError):
                    await client.request(_request(9))
                handler.release.set()
                await asyncio.gather(*tasks)

        asyncio.run(main())


class TestPredictionServiceDeterminism:
    """Batched decisions == serial per-phase selection, bit for bit."""

    def test_batched_decisions_match_direct_selector_calls(
        self, machine, suite, trained_bundle
    ):
        phases = suite.get("SP").phases[:6]
        requests = _phase_requests(machine, trained_bundle, phases)
        selector = ConfigurationSelector()

        # Serial reference: exactly what PredictionPolicy does per phase.
        reference = []
        for request in requests:
            predictions = trained_bundle.predict_from_rates(
                request.ipc_sample, request.rates_dict()
            )
            reference.append(
                selector.rank(
                    predictions,
                    measured_sample=(
                        trained_bundle.sample_configuration,
                        request.ipc_sample,
                    ),
                )
            )

        async def main():
            handler = PredictionHandler(trained_bundle, selector=selector)
            async with AdaptationServer(
                handler, max_batch_size=len(requests), max_batch_window=0.05
            ) as server:
                return await server.submit_many(requests), server.metrics()

        decisions, metrics = asyncio.run(main())
        for request, decision, ranked in zip(requests, decisions, reference):
            assert decision.client_id == request.client_id
            assert decision.phase == request.phase
            assert decision.configuration == ranked.best
            assert decision.ranking == ranked.ranking
            assert decision.predicted == dict(ranked.predictions)
            assert decision.objective == selector.objective
        assert metrics["decisions"] == len(requests)
        assert "prediction_cache" in metrics["caches"]

    def test_one_at_a_time_server_agrees_with_batched_server(
        self, machine, suite, trained_bundle
    ):
        phases = suite.get("BT").phases[:4]
        requests = _phase_requests(machine, trained_bundle, phases)

        async def run_with(batch_size):
            handler = PredictionHandler(trained_bundle)
            async with AdaptationServer(
                handler, max_batch_size=batch_size, max_batch_window=0.02
            ) as server:
                return await server.submit_many(requests)

        batched = asyncio.run(run_with(len(requests)))
        serial = asyncio.run(run_with(1))
        assert [d.to_payload() for d in batched] == [d.to_payload() for d in serial]


class TestGridService:
    def test_grid_decisions_match_direct_grid_best(self, suite):
        phases = suite.get("CG").phases[:4]
        handler = GridHandler(objective="time")
        requests = [
            GridProbeRequest(client_id=f"g{i}", phase=p.name, work=p.work)
            for i, p in enumerate(phases)
        ]
        grid = handler.machine.execute_grid(
            [p.work for p in phases], handler.configurations
        )
        expected = [c.name for c in grid.best("time_seconds", minimize=True)]

        async def main():
            async with AdaptationServer(
                handler, max_batch_size=len(requests), max_batch_window=0.05
            ) as server:
                first = await server.submit_many(requests)
                second = await server.submit_many(requests)
                return first, second, server.metrics()

        first, second, metrics = asyncio.run(main())
        assert [d.configuration for d in first] == expected
        # Repeats are pure memo hits and bit-identical.
        assert [d.to_payload() for d in first] == [d.to_payload() for d in second]
        memo = metrics["caches"]["execution_memo"]
        assert memo["hits"] >= len(requests)
        assert memo["hit_rate"] > 0.0

    def test_grid_handler_rejects_noisy_machines_and_bad_objectives(self):
        with pytest.raises(ValueError, match="noise-free"):
            GridHandler(machine=Machine(noise_sigma=0.05))
        with pytest.raises(ValueError, match="unknown objective"):
            GridHandler(objective="happiness")


class TestMetricsSurface:
    def test_snapshot_shape_and_json_round_trip(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=4, max_batch_window=0.01
            ) as server:
                await server.submit_many([_request(i) for i in range(10)])
                return server.metrics()

        snapshot = asyncio.run(main())
        assert set(snapshot) == {
            "decisions",
            "batches",
            "rejections",
            "decisions_per_second",
            "mean_batch_size",
            "batch_size_histogram",
            "queue_depth",
            "latency_seconds",
            "caches",
        }
        assert snapshot["decisions"] == 10
        assert sum(
            int(size) * count
            for size, count in snapshot["batch_size_histogram"].items()
        ) == 10
        latency = snapshot["latency_seconds"]
        assert latency["count"] == 10
        assert 0.0 <= latency["p50"] <= latency["p99"] <= latency["max"]
        json.dumps(snapshot)  # must be a plain JSON-able dict

    def test_metrics_object_derived_quantities(self):
        clock = iter([0.0, 1.0, 2.0])
        metrics = ServiceMetrics(clock=lambda: next(clock))
        metrics.record_batch(4, [0.01, 0.02, 0.03, 0.04])
        metrics.record_batch(2, [0.05, 0.06])
        metrics.record_batch(3, [0.07, 0.08, 0.09])
        assert metrics.decisions == 9
        assert metrics.decisions_per_second() == pytest.approx(4.5)
        assert metrics.mean_batch_size() == pytest.approx(3.0)
        assert metrics.latency_percentile(100) == pytest.approx(0.09)


class TestOpenLoopClientFleet:
    def test_open_loop_answers_everything_in_order(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=8, max_batch_window=0.005
            ) as server:
                requests = [_request(i) for i in range(40)]
                return await run_open_loop(server, requests, concurrency=8), requests

        result, requests = asyncio.run(main())
        assert [d.client_id for d in result.decisions] == [
            r.client_id for r in requests
        ]
        assert result.decisions_per_second > 0
        assert result.metrics["decisions"] == len(requests)


class TestWireProtocol:
    def test_payload_round_trips(self):
        request = _request(7)
        assert PhaseSampleRequest.from_payload(request.to_payload()) == request
        probe = GridProbeRequest(
            client_id="g", phase="p", work=WorkRequest(instructions=2e8)
        )
        assert GridProbeRequest.from_payload(probe.to_payload()) == probe
        decision = AdaptationDecision(
            client_id="c",
            phase="p",
            configuration="2b",
            objective="ipc",
            ranking=("2b", "4"),
            predicted={"2b": 1.5, "4": 1.2},
        )
        assert AdaptationDecision.from_payload(decision.to_payload()) == decision

    def test_tcp_round_trip_matches_in_process_submission(self):
        async def main():
            handler = _EchoHandler()
            server = AdaptationServer(handler, max_batch_size=4, max_batch_window=0.01)
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                async with TCPAdaptationClient(host, port) as client:
                    remote = await client.request(_request(0))
                local = await server.submit(_request(0))
                return remote, local
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        remote, local = outcome
        assert remote.to_payload() == local.to_payload()

    def test_tcp_rejects_malformed_requests(self):
        async def main():
            handler = _EchoHandler()
            server = AdaptationServer(handler, max_batch_window=0.01)
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"kind": "nope"}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.stop()

        response = asyncio.run(main())
        if response is None:
            pytest.skip("loopback sockets unavailable in this environment")
        assert response["ok"] is False
        assert response["error"] == "bad_request"


class TestLifecycle:
    def test_submitting_to_a_stopped_server_raises(self):
        async def main():
            handler = _EchoHandler()
            server = AdaptationServer(handler)
            async with server:
                await server.submit(_request(0))
            with pytest.raises(RuntimeError, match="not running"):
                await server.submit(_request(1))

        asyncio.run(main())

    def test_stop_rejects_requests_never_served(self):
        async def main():
            handler = _BlockingHandler()
            server = AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0, max_queue_depth=8
            )
            await server.start()
            # Request 0 parks in the handler, requests 1/2 stay queued;
            # stopping must fail all three (in-flight and queued alike)
            # instead of abandoning their awaiters.
            tasks = [
                asyncio.create_task(server.submit(_request(i))) for i in range(3)
            ]
            await asyncio.sleep(0.1)
            await server.stop()
            handler.release.set()  # unpark the worker thread
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(main())
        assert len(outcomes) == 3
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert any("stopped before serving" in str(o) for o in outcomes)

    def test_double_start_is_idempotent(self):
        async def main():
            handler = _EchoHandler()
            server = AdaptationServer(handler, max_batch_window=0.0)
            await server.start()
            await server.start()
            decision = await server.submit(_request(0))
            await server.stop()
            return decision

        assert asyncio.run(main()).client_id == "c0"


class TestRetryAfterHint:
    """The backpressure hint tracks the live backlog, not the worst case."""

    def _warm_batcher(self, max_batch_size=8, window=0.002):
        # Deterministic throughput: 3 batches over 2 fake seconds.
        clock = iter([0.0, 1.0, 2.0])
        metrics = ServiceMetrics(clock=lambda: next(clock))
        batcher = MicroBatcher(
            lambda requests: requests,
            max_batch_size=max_batch_size,
            max_batch_window=window,
            metrics=metrics,
        )
        for size in (8, 8, 8):
            metrics.record_batch(size, [0.01] * size)
        return batcher

    def test_hint_grows_monotonically_with_queue_depth(self):
        batcher = self._warm_batcher()
        hints = [batcher.retry_after_hint(queue_depth=d) for d in (1, 8, 64, 256)]
        assert hints == sorted(hints)
        assert len(set(hints)) == len(hints)  # strictly increasing here

    def test_nearly_drained_queue_advises_much_less_than_full(self):
        batcher = self._warm_batcher()
        light = batcher.retry_after_hint(queue_depth=1)
        full = batcher.retry_after_hint(queue_depth=batcher.max_queue_depth)
        assert light < full / 10

    def test_default_depth_is_the_live_queue_not_the_bound(self):
        batcher = self._warm_batcher()
        # Not started: the live queue is empty, so the hint must match the
        # minimal-depth estimate, not a max_queue_depth drain time.
        assert batcher.queue_depth() == 0
        assert batcher.retry_after_hint() == batcher.retry_after_hint(queue_depth=1)

    def test_cold_fallback_scales_with_whole_batches(self):
        metrics = ServiceMetrics(clock=lambda: 0.0)
        batcher = MicroBatcher(
            lambda requests: requests,
            max_batch_size=8,
            max_batch_window=0.002,
            metrics=metrics,
        )
        metrics.elapsed_floor = 0.0  # force the no-throughput fallback
        assert metrics.decisions_per_second() == 0.0
        one_batch = batcher.retry_after_hint(queue_depth=8)
        two_batches = batcher.retry_after_hint(queue_depth=9)
        assert one_batch == pytest.approx(0.002)
        assert two_batches == pytest.approx(0.004)

    def test_live_rejection_carries_a_backlog_shaped_hint(self):
        async def main():
            handler = _BlockingHandler()
            async with AdaptationServer(
                handler,
                max_batch_size=1,
                max_batch_window=0.0,
                max_queue_depth=2,
            ) as server:
                tasks = [asyncio.create_task(server.submit(_request(0)))]
                await asyncio.sleep(0.05)
                tasks += [
                    asyncio.create_task(server.submit(_request(i))) for i in (1, 2)
                ]
                await asyncio.sleep(0.05)
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    await server.submit(_request(3))
                # Depth-2 backlog: the hint must stay within the live
                # estimate for that depth, far below a deep-bound drain.
                live = server.batcher.retry_after_hint(queue_depth=2)
                worst = server.batcher.retry_after_hint(queue_depth=1024)
                handler.release.set()
                await asyncio.gather(*tasks)
                return excinfo.value.retry_after, live, worst

        retry_after, live, worst = asyncio.run(main())
        assert retry_after <= live
        assert retry_after < worst


class TestSingleBatchThroughput:
    """decisions_per_second is finite after one dispatched batch."""

    def test_raw_metrics_still_report_zero_without_a_floor(self):
        metrics = ServiceMetrics(clock=lambda: 1.5)
        metrics.record_batch(64, [0.01] * 64)
        assert metrics.decisions_per_second() == 0.0

    def test_batcher_floor_makes_a_single_batch_rate_finite(self):
        metrics = ServiceMetrics(clock=lambda: 1.5)
        MicroBatcher(
            lambda requests: requests,
            max_batch_size=64,
            max_batch_window=0.004,
            metrics=metrics,
        )
        metrics.record_batch(64, [0.01] * 64)
        assert metrics.decisions_per_second() == pytest.approx(64 / 0.004)

    def test_explicit_floor_survives_a_larger_preset(self):
        metrics = ServiceMetrics()
        metrics.elapsed_floor = 1.0
        MicroBatcher(lambda requests: requests, max_batch_window=0.002, metrics=metrics)
        assert metrics.elapsed_floor == 1.0  # max(), never lowered

    def test_served_single_batch_reports_finite_throughput(self):
        async def main():
            handler = _EchoHandler()
            async with AdaptationServer(
                handler, max_batch_size=64, max_batch_window=0.005
            ) as server:
                await server.submit_many([_request(i) for i in range(3)])
                return server.metrics()

        snapshot = asyncio.run(main())
        assert snapshot["batches"] == 1
        assert snapshot["decisions_per_second"] > 0.0

    def test_snapshot_percentiles_match_latency_percentile(self):
        metrics = ServiceMetrics(clock=lambda: 0.0)
        metrics.record_batch(5, [0.010, 0.020, 0.030, 0.040, 0.500])
        snapshot = metrics.snapshot()
        assert snapshot["latency_seconds"]["p50"] == metrics.latency_percentile(50)
        assert snapshot["latency_seconds"]["p99"] == metrics.latency_percentile(99)
        assert snapshot["latency_seconds"]["p50"] == pytest.approx(0.030)


class TestRetryBackoffJitter:
    """Rejected clients back off apart instead of retrying in lockstep."""

    def test_same_seed_reproduces_the_delay_stream(self):
        a = AdaptationClient(None, jitter_seed=7)
        b = AdaptationClient(None, jitter_seed=7)
        assert [a.next_retry_delay(0.01, n) for n in range(1, 6)] == [
            b.next_retry_delay(0.01, n) for n in range(1, 6)
        ]

    def test_distinct_seeds_desynchronize_the_first_retry(self):
        clients = [AdaptationClient(None, jitter_seed=i) for i in range(8)]
        delays = {client.next_retry_delay(0.01, 1) for client in clients}
        assert len(delays) == len(clients)
        assert all(0.0 < d <= 0.01 for d in delays)

    def test_default_seeds_are_distinct_per_client(self):
        clients = [AdaptationClient(None) for _ in range(8)]
        delays = {client.next_retry_delay(0.01, 1) for client in clients}
        assert len(delays) == len(clients)

    def test_attempt_scaling_is_monotone_and_capped(self):
        client = AdaptationClient(None, backoff_cap=0.08, jitter=0.0)
        delays = [client.next_retry_delay(0.01, n) for n in range(1, 8)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.02)
        assert delays[-1] == pytest.approx(0.08)  # capped, never unbounded
        assert max(delays) <= client.backoff_cap

    def test_jitter_still_separates_clients_pinned_at_the_cap(self):
        # A hint far above the cap used to collapse every client onto the
        # identical capped sleep; jitter applies after capping.
        clients = [
            AdaptationClient(None, backoff_cap=0.05, jitter_seed=i) for i in range(6)
        ]
        delays = {client.next_retry_delay(10.0, 9) for client in clients}
        assert len(delays) == len(clients)
        assert all(0.0 < d <= 0.05 for d in delays)

    def test_tcp_client_shares_the_same_backoff_discipline(self):
        tcp = TCPAdaptationClient("localhost", 1, jitter_seed=3)
        in_process = AdaptationClient(None, jitter_seed=3)
        assert [tcp.next_retry_delay(0.02, n) for n in range(1, 5)] == [
            in_process.next_retry_delay(0.02, n) for n in range(1, 5)
        ]

    def test_invalid_backoff_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            AdaptationClient(None, backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            AdaptationClient(None, jitter=1.0)

    def test_concurrent_retriers_sleep_apart(self):
        class RecordingClient(AdaptationClient):
            def __init__(self, server, **kwargs):
                super().__init__(server, **kwargs)
                self.recorded = []

            def next_retry_delay(self, retry_after, attempt):
                delay = super().next_retry_delay(retry_after, attempt)
                self.recorded.append(delay)
                return min(delay, 0.001)  # keep the test fast

        async def main():
            handler = _BlockingHandler()
            async with AdaptationServer(
                handler,
                max_batch_size=1,
                max_batch_window=0.0,
                max_queue_depth=1,
            ) as server:
                tasks = [asyncio.create_task(server.submit(_request(0)))]
                await asyncio.sleep(0.05)
                tasks.append(asyncio.create_task(server.submit(_request(1))))
                await asyncio.sleep(0.05)
                clients = [
                    RecordingClient(
                        server, max_retries=500, backoff_cap=0.02, jitter_seed=i
                    )
                    for i in range(3)
                ]
                retriers = [
                    asyncio.create_task(client.request(_request(10 + i)))
                    for i, client in enumerate(clients)
                ]
                await asyncio.sleep(0.1)  # let every client hit the full queue
                handler.release.set()
                decisions = await asyncio.gather(*retriers)
                await asyncio.gather(*tasks)
                return clients, decisions

        clients, decisions = asyncio.run(main())
        assert all(client.retries > 0 for client in clients)
        assert {d.client_id for d in decisions} == {"c10", "c11", "c12"}
        # The first planned sleep of each client is distinct: no lockstep
        # retry wave even though all were rejected with the same hint.
        first_delays = {client.recorded[0] for client in clients}
        assert len(first_delays) == len(clients)


class _PoisonHandler(_EchoHandler):
    """Echo handler that raises whenever a batch contains a poison phase."""

    def handle_batch(self, requests):
        if any("poison" in r.phase for r in requests):
            raise ValueError("simulated handler failure")
        return super().handle_batch(requests)


def _poison_request():
    return PhaseSampleRequest(
        client_id="px", phase="poison", ipc_sample=1.0, rates={"x": 0.1}
    )


class TestTCPSilentDropFixes:
    """The TCP endpoint answers structurally instead of dropping the socket."""

    def test_handler_exception_answers_internal_and_connection_survives(self):
        async def main():
            server = AdaptationServer(
                _PoisonHandler(), max_batch_size=1, max_batch_window=0.0
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                reader, writer = await asyncio.open_connection(host, port)
                poison = dict(_poison_request().to_payload(), kind="phase_sample")
                good = dict(_request(1).to_payload(), kind="phase_sample")
                # The poisoned batch must answer an internal error...
                writer.write(json.dumps(poison).encode() + b"\n")
                await writer.drain()
                first = json.loads(await reader.readline())
                # ...and the SAME connection must keep serving afterwards.
                writer.write(json.dumps(good).encode() + b"\n")
                await writer.drain()
                second = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return first, second
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        first, second = outcome
        assert first["ok"] is False
        assert first["error"] == "internal"
        assert "simulated handler failure" in first["detail"]
        assert second["ok"] is True
        assert second["decision"]["client_id"] == "c1"

    def test_tcp_client_surfaces_internal_error_and_keeps_connection(self):
        async def main():
            server = AdaptationServer(
                _PoisonHandler(), max_batch_size=1, max_batch_window=0.0
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                async with TCPAdaptationClient(host, port) as client:
                    try:
                        await client.request(_poison_request())
                    except RuntimeError as exc:
                        error = exc
                    else:
                        error = None
                    decision = await client.request(_request(2))
                    return error, decision, client.retries
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        error, decision, retries = outcome
        assert error is not None
        assert "internal error" in str(error)
        assert "simulated handler failure" in str(error)
        assert decision.client_id == "c2"
        assert retries == 0

    def test_stop_during_inflight_tcp_request_answers_shutting_down(self):
        async def main():
            handler = _BlockingHandler()
            server = AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            reader, writer = await asyncio.open_connection(host, port)
            line = json.dumps(
                dict(_request(0).to_payload(), kind="phase_sample")
            ).encode() + b"\n"
            writer.write(line)
            await writer.drain()
            await asyncio.sleep(0.1)  # request is now parked in the handler
            stop = asyncio.create_task(server.stop())
            response = json.loads(await reader.readline())
            handler.release.set()  # unpark the worker thread
            await stop
            # After the response the server closes the connection (EOF),
            # rather than leaving the client hanging.
            assert await reader.readline() == b""
            writer.close()
            await writer.wait_closed()
            return response

        response = asyncio.run(main())
        if response is None:
            pytest.skip("loopback sockets unavailable in this environment")
        assert response["ok"] is False
        assert response["error"] == "shutting_down"

    def test_stop_answers_queued_requests_shutting_down_across_connections(self):
        async def main():
            handler = _BlockingHandler()
            server = AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0, max_queue_depth=8
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            connections = []
            for i in range(3):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    json.dumps(
                        dict(_request(i).to_payload(), kind="phase_sample")
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                connections.append((reader, writer))
            await asyncio.sleep(0.1)  # one in flight, two queued
            stop = asyncio.create_task(server.stop())
            responses = [
                json.loads(await reader.readline()) for reader, _ in connections
            ]
            handler.release.set()
            await stop
            for _, writer in connections:
                writer.close()
                await writer.wait_closed()
            return responses

        responses = asyncio.run(main())
        if responses is None:
            pytest.skip("loopback sockets unavailable in this environment")
        assert len(responses) == 3
        for response in responses:
            assert response["ok"] is False
            assert response["error"] == "shutting_down"

    def test_tcp_client_treats_shutting_down_as_non_retriable(self):
        async def main():
            handler = _BlockingHandler()
            server = AdaptationServer(
                handler, max_batch_size=1, max_batch_window=0.0
            )
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            client = TCPAdaptationClient(host, port)
            await client.connect()
            request_task = asyncio.create_task(client.request(_request(0)))
            await asyncio.sleep(0.1)
            stop = asyncio.create_task(server.stop())
            try:
                await request_task
            except ServiceStoppedError as exc:
                outcome = exc
            else:
                outcome = None
            handler.release.set()
            await stop
            await client.close()
            return outcome, client.retries

        result = asyncio.run(main())
        if result is None:
            pytest.skip("loopback sockets unavailable in this environment")
        outcome, retries = result
        assert isinstance(outcome, ServiceStoppedError)
        assert retries == 0  # never retried: the server is going away

    def test_stopped_batcher_raises_typed_service_stopped_error(self):
        async def main():
            server = AdaptationServer(_EchoHandler())
            async with server:
                await server.submit(_request(0))
            with pytest.raises(ServiceStoppedError):
                await server.submit(_request(1))

        asyncio.run(main())


class TestServeTcpDoubleBind:
    """A second serve_tcp() must not silently leak the first listener."""

    def test_double_serve_tcp_raises_and_first_listener_survives(self):
        async def main():
            server = AdaptationServer(_EchoHandler(), max_batch_window=0.0)
            try:
                host, port = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            try:
                with pytest.raises(RuntimeError, match="serve_tcp"):
                    await server.serve_tcp(host="127.0.0.1", port=0)
                # The original endpoint is still serving.
                async with TCPAdaptationClient(host, port) as client:
                    decision = await client.request(_request(0))
                return decision
            finally:
                await server.stop()

        decision = asyncio.run(main())
        if decision is None:
            pytest.skip("loopback sockets unavailable in this environment")
        assert decision.client_id == "c0"

    def test_rebinding_after_stop_works(self):
        async def main():
            server = AdaptationServer(_EchoHandler(), max_batch_window=0.0)
            try:
                first = await server.serve_tcp(host="127.0.0.1", port=0)
            except OSError:
                return None
            await server.stop()
            second = await server.serve_tcp(host="127.0.0.1", port=0)
            try:
                async with TCPAdaptationClient(*second) as client:
                    decision = await client.request(_request(5))
                return first, second, decision
            finally:
                await server.stop()

        outcome = asyncio.run(main())
        if outcome is None:
            pytest.skip("loopback sockets unavailable in this environment")
        first, second, decision = outcome
        assert decision.client_id == "c5"
