"""Property-based equivalence tests for the batched prediction engine.

The batched paths (``predict_batch``) must agree with the per-sample paths
(``predict`` / ``predict_one``) to 1e-10 for every model — network, ensemble
and linear baseline — across dtypes and batch sizes 1 / 7 / 256.  Hypothesis
drives randomized feature matrices; the models themselves are trained once
per module on seeded data so the properties run fast.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import CrossValidationEnsemble, NeuralNetwork, NotFittedError, TrainingConfig
from repro.core import LinearIPCModel

BATCH_SIZES = (1, 7, 256)
DTYPES = (np.float64, np.float32)
N_FEATURES = 5

#: Equivalence bound demanded by the batched engine's acceptance criteria.
ATOL = 1e-10


def _random_batch(draw_seed: int, batch: int, dtype) -> np.ndarray:
    rng = np.random.default_rng(draw_seed)
    return rng.normal(0.0, 2.0, size=(batch, N_FEATURES)).astype(dtype)


@pytest.fixture(scope="module")
def network():
    return NeuralNetwork((N_FEATURES, 11, 3), seed=3)


@pytest.fixture(scope="module")
def fitted_ensemble():
    rng = np.random.default_rng(10)
    x = rng.normal(size=(72, N_FEATURES))
    y = x @ rng.normal(size=N_FEATURES) + 0.3 * np.sin(x[:, 0])
    ensemble = CrossValidationEnsemble(
        hidden_layers=(8,),
        folds=4,
        config=TrainingConfig(max_epochs=25, patience=6),
        seed=4,
    )
    ensemble.fit(x, y)
    return ensemble


@pytest.fixture(scope="module")
def fitted_linear():
    rng = np.random.default_rng(11)
    x = rng.normal(size=(60, N_FEATURES))
    y = 1.5 + x @ rng.normal(size=N_FEATURES)
    return LinearIPCModel().fit(x, y)


class TestNetworkBatched:
    @pytest.mark.parametrize("dtype", DTYPES, ids=["f64", "f32"])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batch_rows_equal_single_predictions(self, network, batch, dtype, seed):
        inputs = _random_batch(seed, batch, dtype)
        batched = network.predict_batch(inputs)
        assert batched.shape == (batch, 3)
        for i in range(batch):
            single = network.predict(inputs[i])
            np.testing.assert_allclose(batched[i], single, atol=ATOL, rtol=0.0)

    def test_rejects_non_2d_input(self, network):
        with pytest.raises(ValueError):
            network.predict_batch(np.zeros(N_FEATURES))
        with pytest.raises(ValueError):
            network.predict_batch(np.zeros((2, 2, N_FEATURES)))

    def test_rejects_wrong_feature_count(self, network):
        with pytest.raises(ValueError):
            network.predict_batch(np.zeros((4, N_FEATURES + 1)))


class TestEnsembleBatched:
    @pytest.mark.parametrize("dtype", DTYPES, ids=["f64", "f32"])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batch_rows_equal_single_predictions(self, fitted_ensemble, batch, dtype, seed):
        inputs = _random_batch(seed, batch, dtype)
        batched = fitted_ensemble.predict_batch(inputs)
        assert batched.shape == (batch,)
        for i in range(batch):
            single = fitted_ensemble.predict(inputs[i])
            np.testing.assert_allclose(batched[i], single, atol=ATOL, rtol=0.0)

    def test_batch_matches_legacy_2d_predict(self, fitted_ensemble):
        inputs = _random_batch(99, 64, np.float64)
        np.testing.assert_allclose(
            fitted_ensemble.predict_batch(inputs),
            fitted_ensemble.predict(inputs),
            atol=ATOL,
            rtol=0.0,
        )

    def test_stacked_parameters_invalidated_by_refit(self, fitted_ensemble):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(48, N_FEATURES))
        y = x[:, 0] * 0.5
        ensemble = CrossValidationEnsemble(
            hidden_layers=(8,),
            folds=4,
            config=TrainingConfig(max_epochs=10, patience=4),
            seed=5,
        )
        ensemble.fit(x, y)
        before = ensemble.predict_batch(x[:3])
        ensemble.fit(x, -y)  # retrain on a different target
        after = ensemble.predict_batch(x[:3])
        assert not np.allclose(before, after)
        # And the refreshed stack still matches the per-sample path.
        for i in range(3):
            np.testing.assert_allclose(
                after[i], ensemble.predict(x[i]), atol=ATOL, rtol=0.0
            )

    def test_unfitted_raises_not_fitted_error(self):
        ensemble = CrossValidationEnsemble(folds=3)
        with pytest.raises(NotFittedError):
            ensemble.predict_batch(np.zeros((2, N_FEATURES)))
        with pytest.raises(NotFittedError):
            ensemble.predict(np.zeros(N_FEATURES))

    def test_rejects_non_2d_input(self, fitted_ensemble):
        with pytest.raises(ValueError):
            fitted_ensemble.predict_batch(np.zeros(N_FEATURES))


class TestLinearBatched:
    @pytest.mark.parametrize("dtype", DTYPES, ids=["f64", "f32"])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batch_rows_equal_single_predictions(self, fitted_linear, batch, dtype, seed):
        inputs = _random_batch(seed, batch, dtype)
        batched = fitted_linear.predict_batch(inputs)
        assert batched.shape == (batch,)
        for i in range(batch):
            np.testing.assert_allclose(
                batched[i], fitted_linear.predict_one(inputs[i]), atol=ATOL, rtol=0.0
            )

    def test_rejects_non_2d_input_like_the_ann_paths(self, fitted_linear):
        """The interchangeable model kinds enforce the same strict contract."""
        with pytest.raises(ValueError):
            fitted_linear.predict_batch(np.zeros(N_FEATURES))

    def test_default_predict_batch_falls_back_to_loop(self, fitted_linear):
        """The ConfigurationModel base class loops over predict_one."""
        from repro.core import ConfigurationModel

        class OffsetModel(ConfigurationModel):
            def predict_one(self, features):
                return float(features[0]) + 1.0

        inputs = _random_batch(5, 7, np.float64)
        np.testing.assert_allclose(
            OffsetModel().predict_batch(inputs), inputs[:, 0] + 1.0
        )
