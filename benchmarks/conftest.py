"""Shared fixtures for the benchmark harness.

Each ``bench_figN_*.py`` file regenerates the data behind one figure of the
paper using :mod:`repro.experiments` and reports its wall-clock cost through
``pytest-benchmark``.  The heavy artefacts (calibrated suite, leave-one-out
predictor bundles, oracle tables) are shared through a session-scoped
:class:`~repro.experiments.ExperimentContext` so the harness measures the
experiment drivers rather than repeated re-training.

Run with::

    pytest benchmarks/ --benchmark-only

Tiers
-----
Everything collected under ``benchmarks/`` is automatically marked ``slow``,
so the fast tier (``python -m pytest -m "not slow"`` from the repository
root, or plain ``python -m pytest`` which only collects ``tests/``) never
pays for it.  The quick performance *assertions* — e.g. the batched-vs-loop
prediction throughput check — additionally carry the ``perf_smoke`` marker
and can be run on their own with::

    PYTHONPATH=src python -m pytest benchmarks/ -m perf_smoke
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext
from repro.machine import Machine
from repro.workloads import nas_suite


def pytest_collection_modifyitems(config, items):
    # Everything in the benchmark harness belongs to the bench tier.
    import pathlib

    bench_dir = pathlib.Path(__file__).parent.resolve()
    for item in items:
        if bench_dir in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def machine():
    """The simulated quad-core platform used by all benchmarks."""
    return Machine()


@pytest.fixture(scope="session")
def ctx():
    """Shared experiment context (reduced training effort, full suite)."""
    return ExperimentContext(machine=Machine(), fast=True, seed=2007)


@pytest.fixture(scope="session")
def warm_ctx(ctx):
    """Context with oracles and predictor bundles already built.

    Used by the figure benchmarks so they measure the experiment logic
    itself rather than the one-off offline training cost (which is
    benchmarked separately in ``bench_training.py``).
    """
    ctx.oracles()
    for workload in ctx.suite:
        ctx.bundle_for_held_out(workload.name)
    return ctx


@pytest.fixture(scope="session")
def suite(machine):
    """Calibrated NAS-like suite."""
    return nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
