"""Benchmark: the 2-D phase × configuration grid execution kernel.

Old-vs-new on the phase axis, mirroring the configuration-axis bench
(``bench_machine_batch.py``): one ``Machine.execute_grid`` pass over the
*entire* NAS-like suite — every phase of every benchmark against the full
placement × P-state cross-product — versus the same cells through one
``Machine.execute_batch`` launch per phase (the engine oracle construction
used before the grid rewiring).  The acceptance bar is a >= 3x speedup with
numerical equivalence on the full sweep.

The run also times the small-batch scalar short-circuit (cold 1-cell and
15-cell sweeps with and without the cutoff) and the memo-warm grid, and
writes ``BENCH_machine_grid.json`` at the repository root so the repo
carries a perf trajectory artifact future PRs can diff against.

Numerical equivalence of the grid against looped scalar ``execute`` for
every NAS phase × cross-product cell is pinned by the fast tier
(``tests/test_machine_grid.py``); this file asserts the throughput claim.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.machine import (
    CONFIG_4,
    Machine,
    dvfs_configurations,
    standard_configurations,
)
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_machine_grid.json"


def _best_of(repetitions: int, fn):
    timings = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def _suite_works():
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    return [phase.work for workload in suite for phase in workload.phases]


@pytest.mark.perf_smoke
def test_grid_vs_per_phase_batch_throughput_and_artifact():
    """Grid >= 3x per-phase batches on the full NAS sweep, equivalent results."""
    machine = Machine(noise_sigma=0.0)
    configs = dvfs_configurations(
        standard_configurations(machine.topology), machine.pstate_table
    )
    works = _suite_works()
    cells = len(works) * len(configs)

    def per_phase_batches():
        return [
            machine.execute_batch(work, configs, use_memo=False) for work in works
        ]

    def grid():
        return machine.execute_grid(works, configs, use_memo=False)

    # Warm both paths (placement statics, NumPy buffers), then check
    # numerical equivalence before timing anything.
    batches = per_phase_batches()
    grid_result = grid()
    for attribute in ("time_seconds", "ipc", "power_watts"):
        batch_rows = np.array([getattr(b, attribute) for b in batches])
        assert np.allclose(
            batch_rows, getattr(grid_result, attribute), rtol=1e-9, atol=0.0
        ), attribute

    batch_seconds = _best_of(3, per_phase_batches)
    grid_seconds = _best_of(3, grid)
    speedup = batch_seconds / grid_seconds

    # A memo-warm grid sweep for the trajectory artifact.
    machine.execute_grid(works, configs)
    warm_seconds = _best_of(3, lambda: machine.execute_grid(works, configs))

    # Small-batch cold latency on both sides of the short-circuit
    # crossover: the dominant 1-cell shape (default = scalar path, vs
    # forced kernel) and the paper's 15-cell cross-product (default =
    # kernel, vs forced scalar path).
    def cold_sweep(configurations, cutoff_kwargs) -> float:
        best = float("inf")
        for _ in range(5):
            fresh = Machine(noise_sigma=0.0, **cutoff_kwargs)
            fresh.execute_batch(works[0], configurations)
            fresh.clear_execution_memo()
            started = time.perf_counter()
            fresh.execute_batch(works[0], configurations)
            best = min(best, time.perf_counter() - started)
        return best

    one_cell_scalar = cold_sweep([CONFIG_4], {})
    one_cell_kernel = cold_sweep([CONFIG_4], {"small_batch_cutoff": 0})
    paper_kernel = cold_sweep(configs, {})
    paper_scalar = cold_sweep(configs, {"small_batch_cutoff": len(configs) + 1})

    artifact = {
        "benchmark": "machine.execute_grid vs per-phase machine.execute_batch",
        "sweep": "full NAS suite x placement x P-state cross-product",
        "grid_full_suite": {
            "works": len(works),
            "configurations": len(configs),
            "cells": cells,
            "per_phase_batch_seconds": batch_seconds,
            "grid_seconds": grid_seconds,
            "memo_warm_grid_seconds": warm_seconds,
            "speedup": speedup,
            "batch_cells_per_second": cells / batch_seconds,
            "grid_cells_per_second": cells / grid_seconds,
            "memo_warm_cells_per_second": cells / warm_seconds,
        },
        "small_batch_shortcircuit": {
            "one_cell_scalar_seconds": one_cell_scalar,
            "one_cell_kernel_seconds": one_cell_kernel,
            "one_cell_speedup": one_cell_kernel / one_cell_scalar,
            "paper_15cell_kernel_seconds": paper_kernel,
            "paper_15cell_forced_scalar_seconds": paper_scalar,
        },
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\ngrid execution ({len(works)} phases x {len(configs)} configs = "
        f"{cells} cells): per-phase batches {cells / batch_seconds:,.0f} cells/s, "
        f"grid {cells / grid_seconds:,.0f} cells/s, memo-warm "
        f"{cells / warm_seconds:,.0f} cells/s, speedup {speedup:.1f}x"
    )
    print(
        f"small-batch cold latency: 1 cell {one_cell_scalar * 1e3:.3f} ms scalar "
        f"vs {one_cell_kernel * 1e3:.3f} ms kernel "
        f"({one_cell_kernel / one_cell_scalar:.1f}x)"
    )
    # The short-circuit's reason to exist: a cold 1-cell sweep must not pay
    # the kernel's fixed setup cost.  Measured gap is ~3x; parity-with-slack
    # keeps the pin robust on loaded machines while still catching a
    # regression that reroutes small batches back through the kernel.
    assert one_cell_scalar <= one_cell_kernel * 1.5, (
        f"cold 1-cell sweep via the scalar short-circuit took "
        f"{one_cell_scalar * 1e3:.3f} ms vs {one_cell_kernel * 1e3:.3f} ms "
        f"through the vectorized kernel"
    )
    # ... and the flip side pins the cutoff's calibration: at 15 cells the
    # kernel must already win, so the default cutoff (measured crossover
    # ~6 cells) keeps the paper cross-product on the vectorized path.
    assert paper_kernel <= paper_scalar * 1.5, (
        f"cold 15-cell sweep through the kernel took {paper_kernel * 1e3:.3f} ms "
        f"vs {paper_scalar * 1e3:.3f} ms via the forced scalar path — the "
        f"small-batch cutoff is miscalibrated"
    )
    assert speedup >= 3.0, (
        f"grid only {speedup:.1f}x faster than per-phase batches "
        f"(batches {batch_seconds * 1e3:.2f} ms, grid {grid_seconds * 1e3:.2f} ms "
        f"for {cells} cells)"
    )


@pytest.mark.perf_smoke
def test_memo_snapshot_seeding_skips_resimulation():
    """A worker machine seeded from a snapshot re-simulates nothing."""
    parent = Machine(noise_sigma=0.0)
    configs = dvfs_configurations(
        standard_configurations(parent.topology), parent.pstate_table
    )
    works = _suite_works()
    parent.execute_grid(works, configs)
    snapshot = parent.export_execution_memo()

    def cold_sweep() -> None:
        fresh = Machine(noise_sigma=0.0)
        fresh.execute_grid(works, configs)

    cold_seconds = _best_of(3, cold_sweep)

    def seeded_sweep() -> None:
        fresh = Machine(noise_sigma=0.0)
        fresh.merge_execution_memo(snapshot)
        grid = fresh.execute_grid(works, configs)
        assert grid.memo_misses == 0

    warm_seconds = _best_of(3, seeded_sweep)

    speedup = cold_seconds / warm_seconds
    print(f"\nsnapshot-seeded sweep: {speedup:.1f}x over a cold machine")
    assert speedup >= 2.0, (
        f"seeded sweep only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds * 1e3:.2f} ms, seeded {warm_seconds * 1e3:.2f} ms)"
    )
