"""Benchmark: regenerate Figure 8 (prediction-based throttling vs alternatives).

This is the paper's headline experiment: per benchmark, the normalized
execution time, power, energy and ED² of the static all-cores default, the
global-optimal oracle, the phase-optimal oracle and ACTOR's ANN prediction
policy.
"""

from __future__ import annotations

from repro.experiments import run_fig8


def test_fig8_concurrency_throttling(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig8, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    averages = figure.data["averages"]

    # Paper averages (prediction policy vs the 4-core default):
    #   time -6.5%, power +1.5%, energy -5.2%, ED2 -17.2%.
    # The shape to reproduce: the prediction policy saves time/energy/ED2 on
    # average, sits between the default and the phase-optimal oracle, and
    # power stays roughly flat.
    assert averages["time"]["prediction"] < 1.0
    assert averages["energy"]["prediction"] < 1.0
    assert averages["ed2"]["prediction"] < 0.95
    assert 0.9 < averages["power"]["prediction"] < 1.1
    assert (
        averages["ed2"]["phase-optimal"]
        <= averages["ed2"]["prediction"] + 1e-9
    )
    # IS shows the largest ED2 win (paper: -71.6%).
    assert figure.data["normalized"]["ed2"]["IS"]["prediction"] < 0.7
    print()
    print(figure.render())
