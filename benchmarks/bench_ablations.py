"""Benchmarks: ablation studies over ACTOR's design choices.

These go beyond the paper's figures and quantify the design decisions the
paper argues for qualitatively: ANN prediction versus regression and
empirical search, the size of the event set, the ensemble fold count, the
hidden-layer width and the sampling budget.
"""

from __future__ import annotations

from repro.experiments import (
    run_ablation_event_sets,
    run_ablation_folds,
    run_ablation_hidden_width,
    run_ablation_policies,
    run_ablation_sampling_fraction,
)


def test_ablation_policies(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_ablation_policies, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    normalized = figure.data["normalized"]
    # For the poorly scaling IS benchmark every adaptive policy must beat the
    # static default on ED2.
    assert normalized["IS"]["prediction:ed2"] < 1.0
    assert normalized["IS"]["search:ed2"] < 1.0
    print()
    print(figure.render())


def test_ablation_event_sets(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_ablation_event_sets, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    errors = figure.data["median_error"]
    assert set(errors) == {"full", "reduced"}
    assert all(e < 0.5 for e in errors.values())
    print()
    print(figure.render())


def test_ablation_cv_folds(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_ablation_folds, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    errors = figure.data["median_error"]
    assert len(errors) == 3
    assert all(e < 0.5 for e in errors.values())
    print()
    print(figure.render())


def test_ablation_hidden_width(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_ablation_hidden_width,
        args=(warm_ctx,),
        kwargs={"widths": (4, 16)},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    errors = figure.data["median_error"]
    assert len(errors) == 2
    print()
    print(figure.render())


def test_ablation_sampling_fraction(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_ablation_sampling_fraction,
        args=(warm_ctx,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    normalized = figure.data["normalized"]
    assert len(normalized) == 3
    # The paper's 20% budget clearly pays off on IS; a starved budget (10%,
    # i.e. a single sampled instance covering only two events) can misfire,
    # which is exactly the trade-off this ablation is meant to expose.
    assert normalized["20%"]["ed2"] < 1.0
    assert normalized["40%"]["ed2"] < 1.0
    print()
    print(figure.render())
