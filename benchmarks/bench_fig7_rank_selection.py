"""Benchmark: regenerate Figure 7 (rank of the selected configuration)."""

from __future__ import annotations

from repro.experiments import run_fig7


def test_fig7_rank_selection(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig7, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    # Paper: best configuration selected for 59.3% of phases, best-or-second
    # for 88.1%, the worst never.
    assert figure.data["best_fraction"] > 0.5
    assert figure.data["top2_fraction"] > 0.75
    assert figure.data["worst_fraction"] < 0.1
    print()
    print(figure.render())
