"""Benchmark: heterogeneous per-core P-states through the grid kernel.

The per-core frequency axis multiplies the configuration space (the bounded
two-level ladders alone add 21 configurations per quad-core placement set),
so it only stays usable if the heterogeneous cells run through the
vectorized grid kernel rather than one scalar ``execute`` per cell.  This
bench sweeps every NAS-like phase against the heterogeneous ladders — one
``Machine.execute_grid`` launch versus the per-cell scalar loop the kernel
replaces — asserts the >= 3x floor after checking numerical equivalence,
and writes ``BENCH_machine_hetero.json`` at the repository root so the repo
carries a perf trajectory artifact future PRs can diff against.

Cell-exact equivalence of the heterogeneous kernel against the scalar path
(1e-12, including the mixed homogeneous/heterogeneous partition and the
noisy RNG stream) is pinned by the fast tier (``tests/test_machine_grid.py``
/ ``tests/test_machine_dvfs.py``); this file asserts the throughput claim.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.machine import (
    Machine,
    dvfs_configurations,
    standard_configurations,
)
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_machine_hetero.json"


def _best_of(repetitions: int, fn):
    timings = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


@pytest.mark.perf_smoke
def test_heterogeneous_grid_vs_scalar_throughput_and_artifact():
    """Heterogeneous grid >= 3x per-cell scalar loops, equivalent results."""
    machine = Machine(noise_sigma=0.0)
    enlarged = dvfs_configurations(
        standard_configurations(machine.topology),
        machine.pstate_table,
        include_heterogeneous=True,
    )
    hetero_configs = [c for c in enlarged if c.is_heterogeneous]
    assert hetero_configs, "the enlarged cross-product must contain ladders"
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    works = [phase.work for workload in suite for phase in workload.phases]
    cells = len(works) * len(hetero_configs)

    def scalar_cells():
        return [
            machine.execute(work, config, apply_noise=False)
            for work in works
            for config in hetero_configs
        ]

    def grid():
        return machine.execute_grid(works, hetero_configs, use_memo=False)

    # Warm both paths, then check numerical equivalence before timing.
    scalar_results = scalar_cells()
    grid_result = grid()
    for attribute in ("time_seconds", "ipc", "power_watts"):
        scalar_rows = np.array(
            [getattr(r, attribute) for r in scalar_results]
        ).reshape(len(works), len(hetero_configs))
        assert np.allclose(
            scalar_rows, getattr(grid_result, attribute), rtol=1e-9, atol=0.0
        ), attribute

    scalar_seconds = _best_of(3, scalar_cells)
    grid_seconds = _best_of(3, grid)
    speedup = scalar_seconds / grid_seconds

    # The enlarged (homogeneous + ladders) sweep through the partitioning
    # dispatcher, plus a memo-warm repeat, for the trajectory artifact.
    machine.execute_grid(works, enlarged)
    enlarged_cold_seconds = _best_of(
        3, lambda: machine.execute_grid(works, enlarged, use_memo=False)
    )
    enlarged_warm_seconds = _best_of(
        3, lambda: machine.execute_grid(works, enlarged)
    )
    enlarged_cells = len(works) * len(enlarged)

    artifact = {
        "benchmark": "heterogeneous Machine.execute_grid vs per-cell scalar execute",
        "sweep": "full NAS suite x bounded per-core P-state ladders",
        "hetero_grid": {
            "works": len(works),
            "configurations": len(hetero_configs),
            "cells": cells,
            "scalar_seconds": scalar_seconds,
            "grid_seconds": grid_seconds,
            "speedup": speedup,
            "scalar_cells_per_second": cells / scalar_seconds,
            "grid_cells_per_second": cells / grid_seconds,
        },
        "enlarged_cross_product": {
            "configurations": len(enlarged),
            "cells": enlarged_cells,
            "cold_grid_seconds": enlarged_cold_seconds,
            "memo_warm_grid_seconds": enlarged_warm_seconds,
            "cold_cells_per_second": enlarged_cells / enlarged_cold_seconds,
            "memo_warm_cells_per_second": enlarged_cells / enlarged_warm_seconds,
        },
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nheterogeneous grid ({len(works)} phases x {len(hetero_configs)} "
        f"ladders = {cells} cells): scalar {cells / scalar_seconds:,.0f} cells/s, "
        f"grid {cells / grid_seconds:,.0f} cells/s, speedup {speedup:.1f}x"
    )
    print(
        f"enlarged cross-product ({enlarged_cells} cells): cold "
        f"{enlarged_cells / enlarged_cold_seconds:,.0f} cells/s, memo-warm "
        f"{enlarged_cells / enlarged_warm_seconds:,.0f} cells/s"
    )
    assert speedup >= 3.0, (
        f"heterogeneous grid only {speedup:.1f}x faster than per-cell scalar "
        f"execution (scalar {scalar_seconds * 1e3:.2f} ms, grid "
        f"{grid_seconds * 1e3:.2f} ms for {cells} cells)"
    )
