"""Benchmark: the DVFS × concurrency extension experiment.

Regenerates the joint placement × frequency comparison — the static
all-cores default, the time-optimal prediction policy and the energy/ED²
energy-aware policies — and asserts the qualitative claim of the paper's
follow-up work: ED²-optimal joint adaptation beats time-optimal placement
adaptation on ED² for a majority of the suite.
"""

from __future__ import annotations

from repro.experiments import run_fig_dvfs


def test_fig_dvfs_energy_aware_adaptation(benchmark, ctx):
    figure = benchmark.pedantic(
        run_fig_dvfs, args=(ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    averages = figure.data["averages"]
    suite_size = len(figure.data["ed2_by_strategy"])

    # The ISSUE's acceptance criterion: with the default P-state table the
    # ED2 objective beats the time-optimal prediction policy on at least
    # three NAS-like benchmarks.
    assert len(figure.data["ed2_wins"]) >= 3, figure.data["ed2_wins"]
    # The suite-level geomean stays at worst within noise of the
    # time-optimal policy (compute-bound codes tie, memory-bound codes win).
    assert (
        averages["ed2"]["energy-ed2"] <= averages["ed2"]["prediction"] * 1.01
    )
    # Both adaptive strategies beat the all-cores default on ED2 on average.
    assert averages["ed2"]["prediction"] < 1.0
    assert averages["ed2"]["energy-ed2"] < 1.0
    # The min-energy objective draws the least average power of the four
    # strategies (it may trade time away for it).
    assert averages["power"]["energy-energy"] <= averages["power"]["prediction"]
    print()
    print(figure.render())
