"""Benchmark: regenerate Figure 3 (power and energy by configuration)."""

from __future__ import annotations

from repro.experiments import run_fig3


def test_fig3_power_energy(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig3, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    # Paper: four-core power is ~14% above one-core on average; BT shows the
    # largest power increase but a large energy reduction.
    assert 0.05 < figure.data["avg_power_increase_4_vs_1"] < 0.30
    assert figure.data["bt_power_ratio_4_vs_1"] > 1.10
    assert figure.data["bt_energy_ratio_4_vs_1"] < 0.60
    # Suite-wide energy change from one to four cores is small compared with
    # the per-benchmark spread (paper: -0.7%).
    assert abs(figure.data["suite_energy_change_4_vs_1"]) < 0.35
    print()
    print(figure.render())
