"""Benchmark: the sharded adaptation fleet versus a single shard.

An open-loop client fleet fires grid-probe requests — every one a distinct
workload fingerprint, so each batch is cold, real simulation work — at two
:class:`~repro.service.ShardedAdaptationServer` fleets built from identical
parts:

* **4 shards** — four event-loop threads, four :class:`GridHandler`
  workers scoring batches concurrently.  The grid kernels are NumPy
  array programs that release the GIL for the bulk of their runtime, so
  shards overlap on real cores;
* **1 shard** — the same front door, routing, and cross-loop plumbing with
  a single worker: the baseline that isolates what sharding buys.

The fleet must sustain at least 2x the single shard's aggregate
decisions/sec whenever at least two CPU cores are available; on a
single-core machine no thread layout can beat serial compute, so the
speedup floor is waived (and recorded as such in the artifact) while every
correctness invariant — bit-identical decisions, balanced routing, the
store bounds below — still holds.  A second phase exercises the durable-store story under the
same load: all four shards publish deltas into ONE shared
:class:`~repro.store.MemoStore` directory governed by a
:class:`~repro.store.CompactionPolicy`, whose background passes must keep
the segment count at or under the threshold without losing a single memo
cell.  Results land in ``BENCH_shard.json`` at the repository root.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib

import pytest

from repro.machine import Machine, WorkRequest
from repro.service import (
    GridHandler,
    GridProbeRequest,
    ShardedAdaptationServer,
    run_open_loop,
)
from repro.store import CompactionPolicy, MemoStore

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_shard.json"

N_REQUESTS = 192
CONCURRENCY = 32
NUM_SHARDS = 4
BATCH_SIZE = 16
BATCH_WINDOW = 0.002
# Shard-balance guard: with CRC32 routing over distinct fingerprints no
# shard should serve more than half the stream.
MAX_SHARD_SHARE = 0.5
# Policy for the shared-store phase: fold the log whenever four delta
# segments accumulate.
MAX_SEGMENT_FILES = 4
# The acceptance bar on multi-core hosts.  The grid kernels are single
# NumPy launches over batch x configuration cells, so four shard threads
# overlap on real cores; with one core the ratio degenerates to ~1x and
# the floor is waived below.
SPEEDUP_FLOOR = 2.0


def _available_cores() -> int:
    """CPU cores this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _grid_requests(count):
    """``count`` grid probes, every one a distinct workload fingerprint.

    Distinct fingerprints keep each batch cold (no memo hits), so the bench
    measures simulation throughput — the GIL-releasing NumPy path sharding
    is built to overlap — rather than dict lookups.
    """
    requests = []
    for i in range(count):
        work = WorkRequest(
            instructions=1.0e8 * (1.0 + 0.001 * i),
            mem_fraction=0.30 + 0.001 * (i % 17),
            flop_fraction=0.35,
            l1_miss_rate=0.02 + 0.0005 * (i % 11),
            l2_miss_rate_solo=0.10,
            working_set_mb=1.0 + 0.05 * (i % 29),
            serial_fraction=0.005,
            barriers=2,
        )
        requests.append(
            GridProbeRequest(client_id=f"app-{i % CONCURRENCY}", phase=f"p{i}", work=work)
        )
    return requests


def _serve_fleet(num_shards, requests, store_dir=None, policy=None):
    """One open-loop run against a fresh fleet (fresh machines, cold memo).

    Shards probe the machine's full placement x P-state cross-product, the
    candidate space a DVFS-aware fleet controller would serve — and enough
    per-decision kernel work that the bench measures simulation, not
    request plumbing.
    """
    stores = []

    def factory(index):
        machine = Machine(noise_sigma=0.0)
        store = None
        if store_dir is not None:
            store = MemoStore(store_dir, policy=policy)
            stores.append(store)
        return GridHandler(
            machine=machine,
            configurations=machine.default_configurations(),
            memo_store=store,
        )

    async def main():
        async with ShardedAdaptationServer(
            factory,
            num_shards=num_shards,
            max_batch_size=BATCH_SIZE,
            max_batch_window=BATCH_WINDOW,
            max_queue_depth=4 * len(requests),
        ) as fleet:
            return await run_open_loop(fleet, requests, concurrency=CONCURRENCY)

    return asyncio.run(main()), stores


@pytest.mark.perf_smoke
def test_sharded_fleet_scales_and_compacts(tmp_path):
    """4 shards >= 2x one shard (given cores), identical decisions, bounded store."""
    cores = _available_cores()
    requests = _grid_requests(N_REQUESTS)

    # Warm-up (placement statics, NumPy buffers, thread spin-up), then
    # best-of-3 per fleet size.  Every run rebuilds its machines, so each
    # one re-simulates the full request set from cold.
    _serve_fleet(NUM_SHARDS, requests)
    sharded_runs = [_serve_fleet(NUM_SHARDS, requests)[0] for _ in range(3)]
    single_runs = [_serve_fleet(1, requests)[0] for _ in range(3)]
    sharded = max(sharded_runs, key=lambda r: r.decisions_per_second)
    single = max(single_runs, key=lambda r: r.decisions_per_second)
    speedup = sharded.decisions_per_second / single.decisions_per_second

    # Sharding is purely a scale-out feature: the fleet's decisions must be
    # bit-identical to the single worker's over the same request stream.
    assert [d.to_payload() for d in sharded.decisions] == [
        d.to_payload() for d in single.decisions
    ]
    shard_decisions = [s["decisions"] for s in sharded.metrics["per_shard"]]
    assert sum(shard_decisions) == N_REQUESTS
    assert max(shard_decisions) <= MAX_SHARD_SHARE * N_REQUESTS, (
        f"routing imbalance: per-shard decisions {shard_decisions}"
    )

    # Shared-store phase: the same load with all shards publishing into one
    # store directory.  Background compaction must hold the segment bound
    # and a fresh seed must reproduce every simulated cell.
    store_dir = tmp_path / "fleet-memo"
    policy = CompactionPolicy(max_segment_files=MAX_SEGMENT_FILES)
    stored, stores = _serve_fleet(
        NUM_SHARDS, requests, store_dir=store_dir, policy=policy
    )
    for store in stores:
        assert store.wait_for_compaction(timeout=30.0)
    compactions = sum(s.compactions_triggered for s in stores)
    compaction_errors = sum(s.compaction_errors for s in stores)
    store_info = MemoStore(store_dir).info()
    assert compactions >= 1, "the bench load never tripped the policy"
    assert compaction_errors == 0
    assert store_info.segment_files <= MAX_SEGMENT_FILES, (
        f"compaction fell behind: {store_info.segment_files} segments on disk "
        f"(policy bound {MAX_SEGMENT_FILES})"
    )
    # Zero lost cells: seeding a fresh machine from the compacted store
    # reproduces exactly the union of what the shards simulated.
    seeded = Machine(noise_sigma=0.0)
    MemoStore(store_dir).seed(seeded)
    reference = Machine(noise_sigma=0.0)
    reference.execute_grid(
        [r.work for r in requests], reference.default_configurations()
    )
    assert set(seeded.export_execution_memo().keys()) == set(
        reference.export_execution_memo().keys()
    )

    artifact = {
        "benchmark": "sharded adaptation fleet: 4 shards vs 1 shard, cold grid load",
        "load": {
            "requests": N_REQUESTS,
            "concurrency": CONCURRENCY,
            "num_shards": NUM_SHARDS,
            "max_batch_size": BATCH_SIZE,
            "max_batch_window_seconds": BATCH_WINDOW,
        },
        "sharded": {
            "decisions_per_second": sharded.decisions_per_second,
            "elapsed_seconds": sharded.elapsed_seconds,
            "per_shard_decisions": shard_decisions,
            "latency_p50_seconds": sharded.metrics["latency_seconds"]["p50"],
            "latency_p99_seconds": sharded.metrics["latency_seconds"]["p99"],
            "rejections": sharded.metrics["rejections"],
        },
        "single_shard": {
            "decisions_per_second": single.decisions_per_second,
            "elapsed_seconds": single.elapsed_seconds,
            "latency_p50_seconds": single.metrics["latency_seconds"]["p50"],
            "latency_p99_seconds": single.metrics["latency_seconds"]["p99"],
        },
        "speedup": speedup,
        "available_cores": cores,
        "speedup_floor_enforced": cores >= 2,
        "shared_store": {
            "decisions_per_second": stored.decisions_per_second,
            "compactions_triggered": compactions,
            "compaction_errors": compaction_errors,
            "final_segment_files": store_info.segment_files,
            "final_replay_bytes": store_info.replay_bytes,
            "policy_max_segment_files": MAX_SEGMENT_FILES,
        },
        "floors": {"speedup": SPEEDUP_FLOOR if cores >= 2 else None},
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nsharded fleet ({N_REQUESTS} cold grid probes, {CONCURRENCY} "
        f"clients): {NUM_SHARDS} shards "
        f"{sharded.decisions_per_second:,.0f} decisions/s "
        f"(per-shard {shard_decisions}, "
        f"p99 {sharded.metrics['latency_seconds']['p99'] * 1e3:.2f} ms), "
        f"1 shard {single.decisions_per_second:,.0f} decisions/s, "
        f"speedup {speedup:.2f}x on {cores} core(s); shared store compacted "
        f"{compactions}x to {store_info.segment_files} segments"
    )
    if cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{NUM_SHARDS} shards only {speedup:.2f}x over one shard "
            f"(sharded {sharded.decisions_per_second:,.0f}/s vs "
            f"{single.decisions_per_second:,.0f}/s) on {cores} cores"
        )
    else:
        # One core cannot run two compute threads faster than one; the
        # artifact records the measured ratio and that the floor was
        # waived.  Sharding must still not fall off a cliff even here.
        print(
            f"single-core host: the {SPEEDUP_FLOOR:.0f}x speedup floor is "
            f"waived (measured {speedup:.2f}x)"
        )
        assert speedup >= 0.5, (
            f"sharding collapsed to {speedup:.2f}x even for its plumbing "
            f"overhead on a single core"
        )
