"""Benchmark: the micro-batching adaptation service under open-loop load.

A synthetic fleet of clients fires phase-sample requests at an
:class:`~repro.service.AdaptationServer` as fast as the service admits
them.  The comparison is the whole point of the service tier:

* **batched** — the production shape: requests coalesce in the bounded
  micro-batching window and each batch is scored through ONE
  ``PredictorBundle.predict_batch`` forward pass;
* **one-at-a-time** — the same server with ``max_batch_size=1``, i.e. the
  per-request serving loop a naive RPC wrapper around the library would
  run.  Both paths pay identical asyncio/executor plumbing, so the ratio
  isolates what batching buys.

The bundle is a linear DVFS bundle over the heterogeneous placement ×
P-state cross-product (36 targets), the shape a fleet-wide energy
controller would serve.  Decisions must be identical between both paths —
batching is purely a throughput feature — and the batched server must
sustain at least 5x the one-at-a-time throughput plus an absolute
decisions/sec floor.  Results land in ``BENCH_service.json`` at the
repository root.
"""

from __future__ import annotations

import asyncio
import json
import pathlib

import pytest

from repro.core import PredictionCache, PredictorBundle, train_predictor_bundle
from repro.machine import CONFIG_4, Machine
from repro.service import AdaptationServer, PhaseSampleRequest, PredictionHandler, run_open_loop
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_REQUESTS = 768
# The fleet must outnumber the batch cap, or batch formation is limited by
# clients-in-flight instead of the scheduler (each client is closed-loop on
# its own decisions; the *fleet* is what keeps the service saturated).
CONCURRENCY = 64
BATCH_SIZE = 64
BATCH_WINDOW = 0.002
# Measured on the dev container: batched ~14k decisions/s vs ~2.1k
# one-at-a-time (6.5x).  Floors keep ~30% slack for loaded CI machines.
SPEEDUP_FLOOR = 5.0
DECISIONS_PER_SECOND_FLOOR = 4000.0


def _dvfs_bundle(machine):
    """Linear bundle over the heterogeneous placement x P-state targets."""
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    return train_predictor_bundle(
        machine,
        [suite.get("CG"), suite.get("MG")],
        linear=True,
        include_reduced=False,
        pstate_table=machine.pstate_table,
        include_heterogeneous=True,
    )


def _phase_sample_requests(machine, bundle, count):
    """``count`` distinct requests cycled over every NAS phase.

    Replicas are jittered well above the prediction cache's quantization
    step, so every request is a distinct cache key and the bench measures
    model evaluation throughput, not cache lookups.
    """
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    base = []
    for workload in suite:
        for phase in workload.phases:
            result = machine.execute(phase.work, CONFIG_4.placement, apply_noise=False)
            rates = {
                event: result.event_counts.get(event, 0.0) / result.cycles
                for event in bundle.full.event_set.events
            }
            base.append((f"{workload.name}/{phase.name}", result.ipc, rates))
    requests = []
    for i in range(count):
        name, ipc, rates = base[i % len(base)]
        scale = 1.0 + (i // len(base)) * 1e-3
        requests.append(
            PhaseSampleRequest(
                client_id=f"app-{i % CONCURRENCY}",
                phase=f"{name}#{i}",
                ipc_sample=ipc * scale,
                rates={event: rate * scale for event, rate in rates.items()},
            )
        )
    return requests


def _serve(bundle, requests, max_batch_size, max_batch_window):
    """One open-loop run against a server with a fresh prediction cache."""
    fresh = PredictorBundle(
        full=bundle.full, cache=PredictionCache(capacity=len(requests) + 64)
    )

    async def main():
        handler = PredictionHandler(fresh)
        async with AdaptationServer(
            handler,
            max_batch_size=max_batch_size,
            max_batch_window=max_batch_window,
            max_queue_depth=4 * len(requests),
        ) as server:
            return await run_open_loop(
                server, requests, concurrency=CONCURRENCY
            )

    return asyncio.run(main())


@pytest.mark.perf_smoke
def test_service_sustains_batched_throughput_floor_and_artifact():
    """Batched serving >= 5x one-at-a-time, identical decisions, artifact."""
    machine = Machine(noise_sigma=0.0)
    bundle = _dvfs_bundle(machine)
    requests = _phase_sample_requests(machine, bundle, N_REQUESTS)
    targets = len(bundle.target_configurations)

    # Warm-up run (placement statics, NumPy buffers, thread pool spin-up),
    # then best-of-3 for each serving shape.
    _serve(bundle, requests, BATCH_SIZE, BATCH_WINDOW)
    batched_runs = [
        _serve(bundle, requests, BATCH_SIZE, BATCH_WINDOW) for _ in range(3)
    ]
    serial_runs = [_serve(bundle, requests, 1, 0.0) for _ in range(3)]
    batched = max(batched_runs, key=lambda r: r.decisions_per_second)
    serial = max(serial_runs, key=lambda r: r.decisions_per_second)
    speedup = batched.decisions_per_second / serial.decisions_per_second

    # Batching is purely a throughput feature: both shapes must produce
    # bit-identical decisions for the same request stream.
    assert [d.to_payload() for d in batched.decisions] == [
        d.to_payload() for d in serial.decisions
    ]

    artifact = {
        "benchmark": "adaptation service: micro-batched vs one-at-a-time serving",
        "load": {
            "requests": N_REQUESTS,
            "concurrency": CONCURRENCY,
            "target_configurations": targets,
            "max_batch_size": BATCH_SIZE,
            "max_batch_window_seconds": BATCH_WINDOW,
        },
        "batched": {
            "decisions_per_second": batched.decisions_per_second,
            "elapsed_seconds": batched.elapsed_seconds,
            "mean_batch_size": batched.metrics["mean_batch_size"],
            "batches": batched.metrics["batches"],
            "latency_p50_seconds": batched.metrics["latency_seconds"]["p50"],
            "latency_p99_seconds": batched.metrics["latency_seconds"]["p99"],
            "rejections": batched.metrics["rejections"],
            "client_retries": batched.retries,
        },
        "one_at_a_time": {
            "decisions_per_second": serial.decisions_per_second,
            "elapsed_seconds": serial.elapsed_seconds,
            "mean_batch_size": serial.metrics["mean_batch_size"],
            "latency_p50_seconds": serial.metrics["latency_seconds"]["p50"],
            "latency_p99_seconds": serial.metrics["latency_seconds"]["p99"],
        },
        "speedup": speedup,
        "floors": {
            "speedup": SPEEDUP_FLOOR,
            "decisions_per_second": DECISIONS_PER_SECOND_FLOOR,
        },
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nadaptation service ({N_REQUESTS} requests x {targets} targets, "
        f"{CONCURRENCY} clients): batched "
        f"{batched.decisions_per_second:,.0f} decisions/s "
        f"(mean batch {batched.metrics['mean_batch_size']:.1f}, "
        f"p99 {batched.metrics['latency_seconds']['p99'] * 1e3:.2f} ms), "
        f"one-at-a-time {serial.decisions_per_second:,.0f} decisions/s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"micro-batching only {speedup:.1f}x over one-at-a-time serving "
        f"(batched {batched.decisions_per_second:,.0f}/s vs "
        f"{serial.decisions_per_second:,.0f}/s)"
    )
    assert batched.decisions_per_second >= DECISIONS_PER_SECOND_FLOOR, (
        f"batched server sustained only {batched.decisions_per_second:,.0f} "
        f"decisions/s (floor {DECISIONS_PER_SECOND_FLOOR:,.0f})"
    )
