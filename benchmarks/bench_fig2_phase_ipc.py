"""Benchmark: regenerate Figure 2 (per-phase IPC of SP per configuration)."""

from __future__ import annotations

from repro.experiments import run_fig2


def test_fig2_phase_ipc(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig2, args=(warm_ctx,), kwargs={"benchmark": "SP"},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    low, high = figure.data["max_ipc_range"]
    # Paper: maximum per-phase IPC ranges from 0.32 to 4.64 — wide spread.
    assert low < 1.0
    assert high > 3.0
    # Best configuration varies across phases (phase-granularity motivation).
    assert len(figure.data["distinct_best_configurations"]) >= 2
    print()
    print(figure.render())
