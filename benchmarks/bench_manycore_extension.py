"""Benchmark: many-core extension (throttling opportunity vs core count)."""

from __future__ import annotations

from repro.experiments import run_manycore_extension


def test_manycore_extension(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_manycore_extension, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    savings = figure.data["savings"]
    assert savings["8-core dual-socket"]["geomean"] >= savings["4-core (paper)"]["geomean"] - 0.02
    print()
    print(figure.render())
