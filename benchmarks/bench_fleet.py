"""Benchmark: memo-backed fleet scheduling versus cold simulation.

One :class:`~repro.cluster.FleetScheduler` decision sweep costs one
memo-backed grid evaluation per node; every schedule after the first —
re-planning under a new cap, a scenario round, a restarted process
seeded from the shared :class:`~repro.store.MemoStore` — must be served
from the memo, not re-simulated.  This bench pins that story:

* **cold**: a fresh fleet schedules the job stream from nothing (every
  grid cell is a real fixed-point solve);
* **warm**: the same fleet re-plans a full cap sweep from its memos,
  which must be at least ``SPEEDUP_FLOOR`` x faster per schedule;
* **restart**: a rebuilt fleet seeded from the store re-decides
  bit-identically with zero memo misses.

The sweep itself doubles as the cap-safety check: across every cap
level, allocated power never exceeds the cap — a violation fails the
bench outright.  Results land in ``BENCH_fleet.json`` at the repository
root.  The floor is pure memo-vs-simulation arithmetic (no threading),
so it holds on a single-core host too — no waiver needed.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.cluster import Fleet, FleetJob, FleetScheduler, Node
from repro.machine import Machine, WorkRequest, dual_socket_xeon

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

N_JOBS = 24
#: Cap levels (fractions of the floor-to-peak span) the warm phase replans.
CAP_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Warm re-planning must beat cold simulation by at least this factor.
SPEEDUP_FLOOR = 5.0


def _available_cores() -> int:
    """CPU cores this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fleet_jobs(count):
    """``count`` weighted jobs, every one a distinct workload fingerprint."""
    jobs = []
    for i in range(count):
        work = WorkRequest(
            instructions=1.0e8 * (1.0 + 0.003 * i),
            mem_fraction=0.25 + 0.002 * (i % 13),
            flop_fraction=0.30,
            l1_miss_rate=0.02 + 0.0005 * (i % 7),
            l2_miss_rate_solo=0.15,
            working_set_mb=1.0 + 0.1 * (i % 19),
            serial_fraction=0.01,
            barriers=3,
        )
        jobs.append(FleetJob(name=f"job-{i}", work=work, weight=1.0 + (i % 3)))
    return jobs


def _build_fleet(store_dir=None):
    """A fresh heterogeneous fleet (two quad-core Xeons, one dual-socket)."""
    fleet = Fleet(
        [
            Node("xeon-a", Machine(noise_sigma=0.0)),
            Node("xeon-b", Machine(noise_sigma=0.0)),
            Node("dual-a", Machine(topology=dual_socket_xeon(), noise_sigma=0.0)),
        ]
    )
    if store_dir is not None:
        fleet.attach_store(store_dir)
    return fleet


@pytest.mark.perf_smoke
def test_memo_backed_fleet_replanning_beats_cold_simulation(tmp_path):
    """Warm cap-sweep >= 5x cold; zero cap violations; restart re-decides."""
    jobs = _fleet_jobs(N_JOBS)
    store_dir = tmp_path / "fleet-memo"

    # Warm-up pass on a throwaway fleet (placement statics, NumPy buffers).
    FleetScheduler(_build_fleet()).schedule(jobs)

    # Cold: a fresh fleet simulates every (job, configuration) cell.
    fleet = _build_fleet(store_dir)
    scheduler = FleetScheduler(fleet)
    start = time.perf_counter()
    unconstrained = scheduler.schedule(jobs)
    cold_seconds = time.perf_counter() - start

    floor = unconstrained.min_feasible_watts
    peak = unconstrained.total_power_watts
    caps = [floor + f * (peak - floor) for f in CAP_FRACTIONS]

    # Warm: replan the whole cap sweep from the memo, best-of-3.
    cap_rows = []
    warm_sweeps = []
    for _ in range(3):
        start = time.perf_counter()
        schedules = [scheduler.schedule(jobs, cap) for cap in caps]
        warm_sweeps.append((time.perf_counter() - start) / len(caps))
    warm_seconds = min(warm_sweeps)
    violations = 0
    for cap, schedule in zip(caps, schedules):
        if schedule.total_power_watts > cap:
            violations += 1
        cap_rows.append(
            {
                "cap_watts": cap,
                "total_power_watts": schedule.total_power_watts,
                "throughput": schedule.throughput,
                "upgrades_applied": len(schedule.upgrades),
            }
        )
    assert violations == 0, f"{violations} cap level(s) exceeded their budget"

    speedup = cold_seconds / warm_seconds

    # Restart: a rebuilt fleet seeded from the shared store re-decides
    # bit-identically without re-simulating a single cell.
    restarted = _build_fleet(store_dir)
    restart_schedule = FleetScheduler(restarted).schedule(jobs, caps[2])
    assert restart_schedule.to_dict() == schedules[2].to_dict()
    restart_misses = sum(
        node.machine.execution_memo_info().misses for node in restarted
    )
    assert restart_misses == 0, (
        f"restarted fleet re-simulated {restart_misses} cells the store "
        f"should have served"
    )

    artifact = {
        "benchmark": "fleet cap-sweep replanning: warm memo vs cold simulation",
        "load": {
            "jobs": N_JOBS,
            "nodes": fleet.names(),
            "cap_levels": len(caps),
            "grid_cells_per_node": {
                node.name: N_JOBS * len(node.configurations) for node in fleet
            },
        },
        "cold_schedule_seconds": cold_seconds,
        "warm_schedule_seconds": warm_seconds,
        "speedup": speedup,
        "cap_sweep": cap_rows,
        "cap_violations": violations,
        "restart": {
            "bit_identical": True,
            "memo_misses": restart_misses,
        },
        "available_cores": _available_cores(),
        "floors": {"speedup": SPEEDUP_FLOOR},
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nfleet replanning ({N_JOBS} jobs x {len(fleet.names())} nodes): "
        f"cold {cold_seconds * 1e3:.1f} ms, warm {warm_seconds * 1e3:.2f} ms "
        f"per schedule, speedup {speedup:.1f}x; "
        f"{len(caps)} cap levels, 0 violations; restart served "
        f"{sum(1 for _ in restarted)} nodes with 0 memo misses"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"memo-backed replanning only {speedup:.2f}x over cold simulation "
        f"(cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s per schedule)"
    )
