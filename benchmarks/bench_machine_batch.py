"""Benchmark: the vectorized batch execution engine of the machine model.

Old-vs-new on the simulation side, mirroring the batched *prediction* bench:
one ``Machine.execute_batch`` pass over a placement × P-state cross-product
versus the same cells through looped ``Machine.execute`` calls.  The
acceptance bar is a >= 10x speedup with numerical equivalence, measured on
the dense configuration space the ROADMAP's many-core / many-P-state
scaling work grows toward (an 8-core topology under a 24-point frequency
ladder — 312 cells); the paper's own 5 x 3 quad-core cross-product is also
timed and reported.  The run writes ``BENCH_machine_batch.json`` at the
repository root — throughput, speedup and cells/s per space — so the repo
carries a perf trajectory artifact future PRs can diff against.

Numerical equivalence across the *full* cross-product for every NAS phase
is pinned by the fast tier (``tests/test_machine_batch.py``); this file
asserts the throughput claim.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.machine import (
    Machine,
    dvfs_configurations,
    enumerate_configurations,
    standard_configurations,
)
from repro.machine.dvfs import PState, PStateTable
from repro.machine.topology import dual_socket_xeon
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_machine_batch.json"


def _dense_pstate_table(points: int = 24) -> PStateTable:
    """A dense frequency ladder (2.4 GHz down to 1.25 GHz)."""
    frequencies = np.linspace(2.4, 1.25, points)
    voltages = np.linspace(1.300, 0.950, points)
    return PStateTable(
        states=tuple(
            PState(name=f"P{i}", frequency_ghz=float(f), voltage=float(v))
            for i, (f, v) in enumerate(zip(frequencies, voltages))
        )
    )


def _best_of(repetitions: int, fn):
    timings = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def _sp_phase_work():
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["SP"])
    return suite.get("SP").phases[0].work


def _measure_space(machine: Machine, configs, work) -> dict:
    """Equivalence-checked loop/batch/memo timings for one config space."""

    def looped():
        return [machine.execute(work, config, apply_noise=False) for config in configs]

    def batched():
        return machine.execute_batch(work, configs, use_memo=False)

    # Warm both paths (placement statics, validation caches, NumPy buffers),
    # then check numerical equivalence before timing anything.
    loop_results = looped()
    batch_results = batched()
    for attribute in ("time_seconds", "ipc", "power_watts"):
        loop_column = np.array([getattr(r, attribute) for r in loop_results])
        assert np.allclose(
            loop_column, getattr(batch_results, attribute), rtol=1e-9, atol=0.0
        ), attribute

    loop_seconds = _best_of(3, looped)
    batch_seconds = _best_of(3, batched)

    # A memo-warm sweep for the trajectory artifact.
    machine.execute_batch(work, configs)
    memo_seconds = _best_of(3, lambda: machine.execute_batch(work, configs))

    cells = len(configs)
    return {
        "cells": cells,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "memo_warm_seconds": memo_seconds,
        "speedup": loop_seconds / batch_seconds,
        "memo_speedup_vs_loop": loop_seconds / memo_seconds,
        "loop_cells_per_second": cells / loop_seconds,
        "batch_cells_per_second": cells / batch_seconds,
        "memo_cells_per_second": cells / memo_seconds,
    }


@pytest.mark.perf_smoke
def test_batch_execution_throughput_and_artifact():
    """Batch >= 10x looped execute on the cross-product, equivalent results."""
    work = _sp_phase_work()

    # The scaling space: 8 cores, compact + scattered placements, 24 P-states.
    table = _dense_pstate_table()
    topology = dual_socket_xeon()
    dense_machine = Machine(topology=topology, pstate_table=table, noise_sigma=0.0)
    dense_configs = dvfs_configurations(enumerate_configurations(topology), table)
    dense = _measure_space(dense_machine, dense_configs, work)

    # The paper's quad-core placement x frequency cross-product (15 cells).
    paper_machine = Machine(noise_sigma=0.0)
    paper_configs = dvfs_configurations(
        standard_configurations(paper_machine.topology), paper_machine.pstate_table
    )
    paper = _measure_space(paper_machine, paper_configs, work)

    artifact = {
        "benchmark": "machine.execute_batch vs looped machine.execute",
        "workload_phase": "SP/phase0",
        "dense_8core_24pstates": dense,
        "paper_quadcore_cross_product": paper,
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nbatch execution ({dense['cells']} cells): "
        f"loop {dense['loop_cells_per_second']:,.0f} cells/s, "
        f"batched {dense['batch_cells_per_second']:,.0f} cells/s, "
        f"memo-warm {dense['memo_cells_per_second']:,.0f} cells/s, "
        f"speedup {dense['speedup']:.1f}x"
    )
    print(
        f"paper cross-product ({paper['cells']} cells): "
        f"speedup {paper['speedup']:.1f}x, memo-warm "
        f"{paper['memo_speedup_vs_loop']:.1f}x"
    )
    assert dense["speedup"] >= 10.0, (
        f"batched execution only {dense['speedup']:.1f}x faster than the loop "
        f"(loop {dense['loop_seconds'] * 1e3:.2f} ms, "
        f"batch {dense['batch_seconds'] * 1e3:.2f} ms for {dense['cells']} cells)"
    )


@pytest.mark.perf_smoke
def test_execution_memo_makes_repeat_sweeps_nearly_free():
    """A memo-warm sweep beats the scalar loop by a wide margin (>= 20x)."""
    machine = Machine(noise_sigma=0.0)
    configs = machine.default_configurations()
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["IS"])
    work = suite.get("IS").phases[0].work

    machine.execute_batch(work, configs)  # populate the memo
    warm = machine.execute_batch(work, configs)
    assert warm.memo_hits == len(configs)

    loop_seconds = _best_of(
        3,
        lambda: [
            machine.execute(work, config, apply_noise=False) for config in configs
        ],
    )
    memo_seconds = _best_of(3, lambda: machine.execute_batch(work, configs))
    speedup = loop_seconds / memo_seconds
    print(f"\nmemo-warm sweep: {speedup:.1f}x over the scalar loop")
    assert speedup >= 20.0, (
        f"memo-warm sweep only {speedup:.1f}x faster than the loop "
        f"(loop {loop_seconds * 1e3:.2f} ms, warm {memo_seconds * 1e3:.2f} ms)"
    )
