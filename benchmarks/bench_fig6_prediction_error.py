"""Benchmark: regenerate Figure 6 (CDF of ANN IPC-prediction error)."""

from __future__ import annotations

from repro.experiments import run_fig6


def test_fig6_prediction_error_cdf(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig6, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    # Paper: median relative IPC error 9.1%, 29.2% of predictions below 5%.
    # The simulator's smoother behaviour keeps the error in the same regime.
    assert figure.data["median_error"] < 0.30
    assert figure.data["fraction_below_20pct"] > 0.5
    assert figure.data["num_predictions"] >= 4 * 40
    cdf = figure.data["cdf"]
    assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
    print()
    print(figure.render())
