"""Benchmark: Section III in-text scalability/energy statistics."""

from __future__ import annotations

from repro.experiments import run_scaling_summary


def test_section3_summary(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_scaling_summary, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    data = figure.data
    # Scalable class averages above 2x on four cores (paper: 2.37x).
    assert data["scalable_class_speedup_4"] > 2.0
    # Flat class gains little from four cores versus two (paper: 7%).
    assert data["flat_class_gain_4_vs_2"] < 0.20
    # IS: four cores no better than one; 2b clearly beats 2a (paper: 2.04x).
    assert data["is_speedup_4_vs_1"] < 1.15
    assert data["is_2b_over_2a"] > 1.4
    # MG best at two loosely coupled cores.
    assert data["mg_4_slower_than_2b"] > 0.10
    print()
    print(figure.render())
