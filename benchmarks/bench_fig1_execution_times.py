"""Benchmark: regenerate Figure 1 (execution times by configuration).

Reports the cost of the whole-suite scalability sweep and checks the
paper's qualitative result: the scaling classes (scalable / flat /
degrading) come out as published.
"""

from __future__ import annotations

from repro.experiments import run_fig1


def test_fig1_execution_times(benchmark, warm_ctx):
    figure = benchmark.pedantic(
        run_fig1, args=(warm_ctx,), rounds=1, iterations=1, warmup_rounds=0
    )
    times = figure.data["times"]
    speedups = figure.data["speedups"]

    # Scalable class gains from every core.
    for name in ("BT", "FT", "LU-HP"):
        assert speedups[name]["4"] > 2.0
    # Degrading class is best on two loosely coupled cores.
    for name in ("IS", "MG"):
        assert figure.data["best_configuration"][name] == "2b"
    # IS suffers on tightly coupled cores (paper: 2.04x slower than 2b).
    assert times["IS"]["2a"] / times["IS"]["2b"] > 1.4
    print()
    print(figure.render())
