"""Benchmark: safeguarded Newton vs bisection on the throughput fixed point.

Every cold cell resolves the coupled throughput/bus-utilization fixed point
``u = implied(u)``.  Bisection pays ~30 full model sweeps per grid to reach
the 1e-9 tolerance; the safeguarded Newton/secant solver reaches the same
points (equivalence ≤ 1e-9 is pinned by the fast tier in
``tests/test_fixed_point.py``) in ~6.

Two ratchets are asserted on the cold NAS × DVFS sweep:

* **fixed-point stage throughput >= 2.5x** — the solver stage is isolated
  by subtracting a zero-sweep baseline (a machine whose tolerance is so
  loose every lane converges at the bracketing sweep, so the kernel runs
  its full setup/assembly but zero solver sweeps) from each solver's total;
  what remains is exactly the per-cell fixed-point resolution cost.
* **full cold-grid wall clock strictly faster under newton** — the
  end-to-end win is smaller (~1.5x: cell setup, per-cell entry assembly
  and result packing are solver-independent and now dominate; the columnar
  payload lever in ROADMAP attacks those), but it must not regress.

Writes ``BENCH_fixed_point.json`` at the repository root so the repo
carries a perf trajectory artifact future PRs can diff against.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.machine import (
    CONFIG_4,
    Machine,
    dvfs_configurations,
    heterogeneous_ladders,
    standard_configurations,
)
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fixed_point.json"


def _best_of(repetitions: int, fn):
    timings = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def _suite_works():
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    return [phase.work for workload in suite for phase in workload.phases]


def _cold_sweep_stats(works, configs, **machine_kwargs):
    """Best-of-5 cold grid seconds plus the machine's model-sweep count."""
    machine = Machine(noise_sigma=0.0, **machine_kwargs)
    machine.execute_grid(works, configs, use_memo=False)  # warm buffers
    machine.solver_iterations = machine.solver_evaluations = 0
    machine.execute_grid(works, configs, use_memo=False)
    evaluations = machine.solver_evaluations
    seconds = _best_of(
        5, lambda: machine.execute_grid(works, configs, use_memo=False)
    )
    return seconds, evaluations


@pytest.mark.perf_smoke
def test_newton_vs_bisect_cold_grid_throughput_and_artifact():
    """Newton >= 2.5x bisect on the cold cells' fixed-point stage."""
    machine = Machine(noise_sigma=0.0)
    configs = dvfs_configurations(
        standard_configurations(machine.topology), machine.pstate_table
    )
    works = _suite_works()
    cells = len(works) * len(configs)

    newton_seconds, newton_evals = _cold_sweep_stats(
        works, configs, fixed_point_solver="newton"
    )
    bisect_seconds, bisect_evals = _cold_sweep_stats(
        works, configs, fixed_point_solver="bisect"
    )
    # Zero-sweep baseline: with an (absurdly) loose tolerance every lane is
    # converged at the bracketing sweep, so this run pays the kernel's full
    # solver-independent cost — setup, gathers, breakdown/power grids, entry
    # assembly — and not one solver sweep.  Subtracting it isolates the
    # fixed-point stage both solvers actually compete on.
    baseline_seconds, baseline_evals = _cold_sweep_stats(
        works, configs, fixed_point_tolerance=1e6
    )
    newton_stage = newton_seconds - baseline_seconds
    bisect_stage = bisect_seconds - baseline_seconds
    stage_speedup = bisect_stage / newton_stage
    grid_speedup = bisect_seconds / newton_seconds

    # The heterogeneous per-core kernel shares the solver; record its ratio
    # too (informational — the asserted floors are the homogeneous sweep).
    ladders = heterogeneous_ladders(CONFIG_4, machine.pstate_table)
    hetero_newton, _ = _cold_sweep_stats(
        works, ladders, fixed_point_solver="newton"
    )
    hetero_bisect, _ = _cold_sweep_stats(
        works, ladders, fixed_point_solver="bisect"
    )

    artifact = {
        "benchmark": "fixed_point_solver=newton vs bisect, cold execute_grid",
        "sweep": "full NAS suite x placement x P-state cross-product",
        "tolerance": machine.fixed_point_tolerance,
        "homogeneous": {
            "works": len(works),
            "configurations": len(configs),
            "cells": cells,
            "newton_seconds": newton_seconds,
            "bisect_seconds": bisect_seconds,
            "zero_sweep_baseline_seconds": baseline_seconds,
            "fixed_point_stage_newton_seconds": newton_stage,
            "fixed_point_stage_bisect_seconds": bisect_stage,
            "fixed_point_stage_speedup": stage_speedup,
            "grid_speedup": grid_speedup,
            "newton_cells_per_second": cells / newton_seconds,
            "bisect_cells_per_second": cells / bisect_seconds,
            "newton_model_sweeps": newton_evals,
            "bisect_model_sweeps": bisect_evals,
            "baseline_model_sweeps": baseline_evals,
        },
        "heterogeneous": {
            "ladders": len(ladders),
            "cells": len(works) * len(ladders),
            "newton_seconds": hetero_newton,
            "bisect_seconds": hetero_bisect,
            "grid_speedup": hetero_bisect / hetero_newton,
        },
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nfixed-point stage ({cells} cold cells): newton "
        f"{newton_stage * 1e3:.2f} ms ({newton_evals} model sweeps), bisect "
        f"{bisect_stage * 1e3:.2f} ms ({bisect_evals} sweeps), stage speedup "
        f"{stage_speedup:.1f}x; full cold grid {newton_seconds * 1e3:.2f} ms "
        f"vs {bisect_seconds * 1e3:.2f} ms ({grid_speedup:.2f}x); "
        f"heterogeneous grid {hetero_bisect / hetero_newton:.2f}x"
    )
    assert newton_evals <= bisect_evals / 2, (
        f"newton spent {newton_evals} model sweeps vs bisect's {bisect_evals} "
        f"— the secant step is not cutting evaluation counts"
    )
    assert stage_speedup >= 2.5, (
        f"newton's fixed-point stage only {stage_speedup:.1f}x faster than "
        f"bisect's (newton {newton_stage * 1e3:.2f} ms, bisect "
        f"{bisect_stage * 1e3:.2f} ms over {cells} cells)"
    )
    # End-to-end ratchet: the full cold grid must stay strictly faster under
    # the default solver (parity-with-slack guards loaded machines).
    assert newton_seconds <= bisect_seconds * 0.9, (
        f"cold grid under newton ({newton_seconds * 1e3:.2f} ms) is not "
        f"beating bisect ({bisect_seconds * 1e3:.2f} ms)"
    )
