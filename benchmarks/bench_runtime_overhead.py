"""Benchmarks: online overhead of ACTOR's building blocks.

The paper emphasizes that prediction-based adaptation must have low online
overhead (counter collection plus model evaluation) compared with empirical
search.  These micro-benchmarks measure the per-call cost of the pieces that
run online — phase execution on the simulator, a counter-sampled execution,
an ANN ensemble prediction — and of the offline training step.
"""

from __future__ import annotations

import numpy as np

from repro.core import collect_training_dataset, train_ipc_predictor
from repro.core.training import ANNTrainingOptions
from repro.ann import TrainingConfig
from repro.machine import CONFIG_4, Machine
from repro.openmp import OpenMPRuntime, PhaseDirective
from repro.workloads import nas_suite


def test_machine_execute_throughput(benchmark, suite, machine):
    """Cost of one analytical phase execution (the simulator's hot path)."""
    work = suite.get("SP").phases[0].work

    def execute():
        return machine.execute(work, CONFIG_4, apply_noise=False)

    result = benchmark(execute)
    assert result.time_seconds > 0


def test_sampled_region_execution(benchmark, suite):
    """Cost of executing a region with two hardware counters programmed."""
    machine = Machine()
    runtime = OpenMPRuntime(machine, seed=1)
    workload = suite.get("SP")
    region = runtime.register_regions(workload)[0]
    directive = PhaseDirective(
        configuration=CONFIG_4, sample_events=("PAPI_L2_TCM", "PAPI_BUS_TRN")
    )

    execution = benchmark(lambda: runtime.execute_region(region, 0, directive))
    assert execution.reading is not None


def test_online_prediction_latency(benchmark, warm_ctx):
    """Cost of one ensemble prediction for all target configurations.

    This is ACTOR's online model-evaluation overhead; the paper argues it is
    comparable to the regression baseline and far cheaper than search.
    """
    bundle = warm_ctx.bundle_for_held_out("SP")
    predictor = bundle.full
    rng = np.random.default_rng(0)
    features = {
        event: abs(rng.normal(0.01, 0.005)) for event in predictor.event_set.events
    }

    predictions = benchmark(lambda: predictor.predict_from_rates(0.8, features))
    assert set(predictions) == {"1", "2a", "2b", "3"}


def test_offline_training_cost(benchmark, machine):
    """Cost of the offline training pipeline on a two-benchmark corpus."""
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["CG", "FT"])
    options = ANNTrainingOptions(
        hidden_layers=(8,),
        folds=3,
        training=TrainingConfig(max_epochs=40, patience=8),
        samples_per_phase=2,
    )

    def train():
        dataset = collect_training_dataset(
            machine, list(suite), samples_per_phase=2, seed=3
        )
        return train_ipc_predictor(dataset, options)

    predictor = benchmark.pedantic(train, rounds=1, iterations=1, warmup_rounds=0)
    assert predictor.target_configurations == ["1", "2a", "2b", "3"]
