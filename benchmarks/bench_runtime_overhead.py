"""Benchmarks: online overhead of ACTOR's building blocks.

The paper emphasizes that prediction-based adaptation must have low online
overhead (counter collection plus model evaluation) compared with empirical
search.  These micro-benchmarks measure the per-call cost of the pieces that
run online — phase execution on the simulator, a counter-sampled execution,
an ANN ensemble prediction — and of the offline training step.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    collect_training_dataset,
    train_ipc_predictor,
    train_linear_predictor,
)
from repro.core.training import ANNTrainingOptions
from repro.ann import TrainingConfig
from repro.machine import CONFIG_4, Machine
from repro.openmp import OpenMPRuntime, PhaseDirective
from repro.workloads import nas_suite


@pytest.fixture(scope="module")
def small_predictor(machine):
    """A small but real ANN predictor trained on a two-benchmark corpus."""
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["CG", "FT"])
    dataset = collect_training_dataset(
        machine, list(suite), samples_per_phase=3, seed=17
    )
    options = ANNTrainingOptions(
        hidden_layers=(12,),
        folds=4,
        training=TrainingConfig(max_epochs=60, patience=10),
        samples_per_phase=3,
    )
    return train_ipc_predictor(dataset, options)


def test_machine_execute_throughput(benchmark, suite, machine):
    """Cost of one analytical phase execution (the simulator's hot path)."""
    work = suite.get("SP").phases[0].work

    def execute():
        return machine.execute(work, CONFIG_4, apply_noise=False)

    result = benchmark(execute)
    assert result.time_seconds > 0


def test_sampled_region_execution(benchmark, suite):
    """Cost of executing a region with two hardware counters programmed."""
    machine = Machine()
    runtime = OpenMPRuntime(machine, seed=1)
    workload = suite.get("SP")
    region = runtime.register_regions(workload)[0]
    directive = PhaseDirective(
        configuration=CONFIG_4, sample_events=("PAPI_L2_TCM", "PAPI_BUS_TRN")
    )

    execution = benchmark(lambda: runtime.execute_region(region, 0, directive))
    assert execution.reading is not None


def test_online_prediction_latency(benchmark, warm_ctx):
    """Cost of one ensemble prediction for all target configurations.

    This is ACTOR's online model-evaluation overhead; the paper argues it is
    comparable to the regression baseline and far cheaper than search.
    """
    bundle = warm_ctx.bundle_for_held_out("SP")
    predictor = bundle.full
    rng = np.random.default_rng(0)
    features = {
        event: abs(rng.normal(0.01, 0.005)) for event in predictor.event_set.events
    }

    predictions = benchmark(lambda: predictor.predict_from_rates(0.8, features))
    assert set(predictions) == {"1", "2a", "2b", "3"}


@pytest.mark.perf_smoke
def test_batched_prediction_throughput(small_predictor):
    """Old-vs-new: 256 pending rows through predict_batch vs a predict loop.

    The batched engine evaluates all target configurations for all rows with
    one stacked matmul per ensemble layer; the acceptance bar is a >= 10x
    speedup over 256 sequential per-row predictions, with numerical
    equivalence to the loop path.
    """
    predictor = small_predictor
    rng = np.random.default_rng(123)
    rows = 256
    features = np.column_stack(
        [np.abs(rng.normal(0.9, 0.2, size=rows))]
        + [np.abs(rng.normal(0.01, 0.005, size=rows)) for _ in predictor.event_set.events]
    )

    def sequential():
        return [predictor.predict(row) for row in features]

    def batched():
        return predictor.predict_batch(features)

    # Warm both paths (builds the ensembles' stacked parameter tensors).
    loop_results = sequential()
    batch_results = batched()

    # Numerical equivalence of the two engines.
    for config in predictor.target_configurations:
        loop_column = np.array([row[config] for row in loop_results])
        assert np.allclose(loop_column, batch_results[config], atol=1e-10, rtol=0.0)

    def best_of_three(fn):
        timings = []
        for _ in range(3):
            started = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - started)
        return min(timings)

    loop_seconds = best_of_three(sequential)
    batch_seconds = best_of_three(batched)
    speedup = loop_seconds / batch_seconds
    print(
        f"\nprediction throughput: loop {rows / loop_seconds:,.0f} rows/s, "
        f"batched {rows / batch_seconds:,.0f} rows/s, speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"batched prediction only {speedup:.1f}x faster than the sequential "
        f"loop (loop {loop_seconds * 1e3:.2f} ms, batched {batch_seconds * 1e3:.2f} ms)"
    )


@pytest.mark.perf_smoke
def test_linear_batched_prediction_matches_loop(machine):
    """The regression baseline's batched path is equivalent and faster too."""
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["CG"])
    dataset = collect_training_dataset(
        machine, list(suite), samples_per_phase=2, seed=19
    )
    predictor = train_linear_predictor(dataset)
    rng = np.random.default_rng(7)
    features = np.abs(rng.normal(0.05, 0.02, size=(256, dataset.event_set.num_features)))
    batched = predictor.predict_batch(features)
    for config in predictor.target_configurations:
        loop = np.array([predictor.predict(row)[config] for row in features])
        assert np.allclose(loop, batched[config], atol=1e-10, rtol=0.0)


def test_offline_training_cost(benchmark, machine):
    """Cost of the offline training pipeline on a two-benchmark corpus."""
    suite = nas_suite(machine=Machine(noise_sigma=0.0), names=["CG", "FT"])
    options = ANNTrainingOptions(
        hidden_layers=(8,),
        folds=3,
        training=TrainingConfig(max_epochs=40, patience=8),
        samples_per_phase=2,
    )

    def train():
        dataset = collect_training_dataset(
            machine, list(suite), samples_per_phase=2, seed=3
        )
        return train_ipc_predictor(dataset, options)

    predictor = benchmark.pedantic(train, rounds=1, iterations=1, warmup_rounds=0)
    assert predictor.target_configurations == ["1", "2a", "2b", "3"]
