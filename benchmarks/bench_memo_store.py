"""Benchmark: warm-starting a restarted process from the durable memo store.

A cold process sweeps the full NAS-like suite against the placement ×
P-state cross-product, simulating every cell, then publishes its memo to a
:class:`~repro.store.MemoStore`.  A "restarted" process — a fresh machine
plus a fresh store handle on the same directory, exactly what a new OS
process would construct — seeds from disk and repeats the sweep.  The
acceptance bar is a >= 10x reduction in cold cells (in fact the restarted
sweep must re-simulate **zero** previously stored cells); the artifact also
times the disk seed itself and a compacted-store seed, and records the
store's file shape.

Writes ``BENCH_memo_store.json`` at the repository root so the repo carries
a perf trajectory artifact future PRs can diff against.  Crash-path
correctness (torn tails, stale schemas, concurrent writers) is pinned by
the fast tier (``tests/test_memo_store.py``); this file asserts the
warm-start claim.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.machine import Machine, dvfs_configurations, standard_configurations
from repro.store import MemoStore
from repro.workloads import nas_suite

_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_memo_store.json"


def _best_of(repetitions: int, fn):
    timings = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def _suite_works():
    suite = nas_suite(machine=Machine(noise_sigma=0.0), variability=0.0)
    return [phase.work for workload in suite for phase in workload.phases]


@pytest.mark.perf_smoke
def test_store_warm_restart_skips_cold_cells(tmp_path):
    """A restarted process against a populated store re-simulates nothing."""
    directory = tmp_path / "memo"
    works = _suite_works()
    reference = Machine(noise_sigma=0.0)
    configs = dvfs_configurations(
        standard_configurations(reference.topology), reference.pstate_table
    )
    cells = len(works) * len(configs)

    # --- cold run: empty store, every cell simulated, memo published ----
    cold_machine = Machine(noise_sigma=0.0)
    cold_store = MemoStore(directory)
    cold_store.seed(cold_machine)
    cold_started = time.perf_counter()
    cold_grid = cold_machine.execute_grid(works, configs)
    cold_seconds = time.perf_counter() - cold_started
    cold_misses = cold_grid.memo_misses
    absorb_started = time.perf_counter()
    appended = cold_store.absorb(cold_machine)
    absorb_seconds = time.perf_counter() - absorb_started
    # Duplicate work fingerprints across workloads dedup in the memo, so
    # the store holds exactly the cells the cold run actually simulated.
    assert appended == cold_misses

    # --- restarted run: fresh machine + fresh handle on the same dir ----
    warm_machine = Machine(noise_sigma=0.0)
    warm_store = MemoStore(directory)
    seed_started = time.perf_counter()
    seeded = warm_store.seed(warm_machine)
    seed_seconds = time.perf_counter() - seed_started
    assert seeded == appended
    seeded_snapshot = warm_machine.export_execution_memo()
    warm_started = time.perf_counter()
    warm_grid = warm_machine.execute_grid(works, configs)
    warm_seconds = time.perf_counter() - warm_started
    warm_misses = warm_grid.memo_misses

    assert warm_misses == 0, (
        f"restarted process re-simulated {warm_misses} cells that the store "
        f"already held"
    )
    assert warm_misses * 10 <= cold_misses, (
        f"store-warm run computed {warm_misses} cold cells vs {cold_misses} "
        f"on the cold run — the >= 10x warm-start floor does not hold"
    )
    # Nothing new was computed beyond the seed, so the restarted
    # process publishes nothing.
    assert warm_store.absorb(warm_machine, since=seeded_snapshot) == 0

    # --- compaction: fold the segment log, seed again from the base ------
    compaction = warm_store.compact()
    compact_seed_seconds = _best_of(
        3, lambda: MemoStore(directory).seed(Machine(noise_sigma=0.0))
    )

    miss_ratio = cold_misses / max(warm_misses, 1)
    artifact = {
        "benchmark": "MemoStore warm restart vs cold process",
        "sweep": "full NAS suite x placement x P-state cross-product",
        "cells": cells,
        "cold": {
            "grid_seconds": cold_seconds,
            "memo_misses": cold_misses,
            "absorb_seconds": absorb_seconds,
            "cells_appended": appended,
        },
        "warm_restart": {
            "seed_seconds": seed_seconds,
            "cells_seeded": seeded,
            "grid_seconds": warm_seconds,
            "memo_misses": warm_misses,
        },
        "cold_to_warm_miss_ratio": miss_ratio,
        "grid_speedup": cold_seconds / max(warm_seconds, 1e-12),
        "compaction": {
            "folded_files": compaction.folded_files,
            "cells": compaction.cells,
            "base_seed_seconds": compact_seed_seconds,
        },
        "store": warm_store.info().as_dict(),
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print(
        f"\nmemo store warm restart ({cells} cells): cold grid "
        f"{cold_seconds * 1e3:.1f} ms / {cold_misses} misses, disk seed "
        f"{seed_seconds * 1e3:.1f} ms, warm grid {warm_seconds * 1e3:.1f} ms / "
        f"{warm_misses} misses (miss ratio {miss_ratio:,.0f}x, grid speedup "
        f"{cold_seconds / max(warm_seconds, 1e-12):.1f}x)"
    )
    print(
        f"compaction folded {compaction.folded_files} segment(s) into "
        f"{compaction.cells} cells; compacted-base seed "
        f"{compact_seed_seconds * 1e3:.1f} ms"
    )
